// Package checkpoint provides atomic, versioned, config-hash-guarded
// snapshot files for long-running campaigns.
//
// A snapshot is a single JSON envelope carrying a magic marker, a payload
// kind, a format version, a hash of the producing configuration and the
// payload itself. Writes are atomic (write-temp + fsync + rename in the
// destination directory), so a crash or kill mid-save leaves either the
// previous snapshot or the new one, never a torn file. Loads refuse
// envelopes whose kind, version or config hash do not match what the
// caller expects, which is what prevents resuming a campaign against a
// different configuration and silently blending incompatible statistics.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Magic marks every snapshot file this package writes.
const Magic = "xedsim-checkpoint"

// Envelope is the on-disk frame of a snapshot.
type Envelope struct {
	Magic      string          `json:"magic"`
	Kind       string          `json:"kind"`
	Version    int             `json:"version"`
	ConfigHash string          `json:"config_hash"`
	Payload    json.RawMessage `json:"payload"`
}

// Sentinel errors; callers match with errors.Is.
var (
	ErrNotCheckpoint   = errors.New("checkpoint: not a checkpoint file")
	ErrKindMismatch    = errors.New("checkpoint: payload kind mismatch")
	ErrVersionMismatch = errors.New("checkpoint: format version mismatch")
	ErrConfigMismatch  = errors.New("checkpoint: config hash mismatch")
)

// Hash returns the hex SHA-256 of v's canonical JSON encoding. Campaigns
// hash their full configuration (config struct, scheme names, trial count,
// seed, chunk layout) so that a snapshot can only be resumed by the exact
// run shape that produced it.
func Hash(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Marshal encodes a payload into the canonical envelope bytes Save writes.
// The encoding is deterministic (encoding/json with fixed field order), so
// two snapshots of identical state are byte-identical — the property the
// distributed coordinator's bit-identity checks rest on.
func Marshal(kind string, version int, configHash string, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding payload: %w", err)
	}
	env, err := json.Marshal(Envelope{
		Magic:      Magic,
		Kind:       kind,
		Version:    version,
		ConfigHash: configHash,
		Payload:    raw,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding envelope: %w", err)
	}
	return env, nil
}

// CleanStale removes leftover temp files from interrupted Saves of path: a
// crash (or kill) between CreateTemp and the rename leaves a
// "<base>.tmp<rand>" sibling behind forever, and a long-lived service
// saving on a timer would otherwise accumulate them without bound. Save
// calls this before every write; it is also exported for explicit startup
// sweeps. Removal failures on individual files are ignored (the next sweep
// retries); only listing the directory can fail.
func CleanStale(path string) error {
	stale, err := filepath.Glob(path + ".tmp*")
	if err != nil {
		// Only bad patterns error, and ours is fixed; defensive.
		return fmt.Errorf("checkpoint: sweeping stale temps: %w", err)
	}
	for _, s := range stale {
		os.Remove(s) //nolint:errcheck // best-effort; retried next Save
	}
	return nil
}

// Save atomically AND durably writes payload under the given
// kind/version/configHash to path. The temp file lives in path's directory
// so the rename cannot cross filesystems, and after the rename the
// directory itself is fsynced: the rename is a directory-entry update, so
// without the directory sync a crash right after a "successful" Save could
// still roll the file back to the previous snapshot (or to nothing). Every
// error path removes the temp file, and temp files orphaned by a crash
// mid-save are swept on the next Save (see CleanStale).
func Save(path, kind string, version int, configHash string, payload any) error {
	env, err := Marshal(kind, version, configHash, payload)
	if err != nil {
		return err
	}
	if err := CleanStale(path); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Some platforms/filesystems refuse to fsync directories; that is reported
// as-is — the campaign treats a failed save as fatal rather than running
// on with a checkpoint of unknown durability.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing dir %s: %w", dir, err)
	}
	return nil
}

// Load reads the snapshot at path, validates its envelope against the
// expected kind, version and config hash, and unmarshals the payload into
// `into`. A missing file surfaces as os.ErrNotExist; mismatches surface as
// the package's sentinel errors.
func Load(path, kind string, version int, configHash string, into any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrNotCheckpoint, path, err)
	}
	if env.Magic != Magic {
		return fmt.Errorf("%w: %s", ErrNotCheckpoint, path)
	}
	if env.Kind != kind {
		return fmt.Errorf("%w: %s holds %q, want %q", ErrKindMismatch, path, env.Kind, kind)
	}
	if env.Version != version {
		return fmt.Errorf("%w: %s is v%d, want v%d", ErrVersionMismatch, path, env.Version, version)
	}
	if env.ConfigHash != configHash {
		return fmt.Errorf("%w: %s was produced by a different configuration", ErrConfigMismatch, path)
	}
	if err := json.Unmarshal(env.Payload, into); err != nil {
		return fmt.Errorf("checkpoint: decoding %s payload: %w", path, err)
	}
	return nil
}
