package simrand

import (
	"errors"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	src := New(12345)
	for i := 0; i < 17; i++ {
		src.Uint64() // advance off the seed point
	}
	st := src.State()
	var want [32]uint64
	for i := range want {
		want[i] = src.Uint64()
	}

	restored, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := restored.Uint64(); got != want[i] {
			t.Fatalf("draw %d: restored source produced %#x, want %#x", i, got, want[i])
		}
	}

	// SetState on a live source rewinds it the same way.
	if err := src.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := src.Uint64(); got != want[i] {
			t.Fatalf("draw %d after SetState: %#x, want %#x", i, got, want[i])
		}
	}
}

func TestStateSnapshotIsValueCopy(t *testing.T) {
	src := New(7)
	st := src.State()
	src.Uint64()
	if st != New(7).State() {
		t.Fatal("advancing the source disturbed an earlier snapshot")
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	var src Source
	if err := src.SetState(State{}); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("err = %v, want ErrInvalidState", err)
	}
	if _, err := Restore(State{}); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("Restore err = %v, want ErrInvalidState", err)
	}
}

func TestSeedStreamMatchesNewStream(t *testing.T) {
	var src Source
	src.SeedStream(42, 3)
	ref := NewStream(42, 3)
	for i := 0; i < 8; i++ {
		if a, b := src.Uint64(), ref.Uint64(); a != b {
			t.Fatalf("draw %d: SeedStream %#x != NewStream %#x", i, a, b)
		}
	}
}

func TestStreamsAreDistinct(t *testing.T) {
	// Distinct streams of one seed, and one stream under distinct seeds,
	// must not collide on their opening draws.
	seen := map[uint64]string{}
	record := func(label string, s *Source) {
		v := s.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %s and %s opened with the same draw %#x", prev, label, v)
		}
		seen[v] = label
	}
	for stream := uint64(0); stream < 64; stream++ {
		record("seed42/"+string(rune('a'+stream%26)), NewStream(42, stream))
	}
	for seed := uint64(100); seed < 164; seed++ {
		record("stream7", NewStream(seed, 7))
	}
}

func TestSeedStreamIsInPlace(t *testing.T) {
	// The campaign engine reseeds once per chunk on the hot path; it must
	// not allocate.
	var src Source
	n := testing.AllocsPerRun(100, func() {
		src.SeedStream(1, 2)
		_ = src.Uint64()
	})
	if n != 0 {
		t.Fatalf("SeedStream allocates %v per run", n)
	}
}
