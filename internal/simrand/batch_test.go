package simrand

import (
	"math"
	"math/bits"
	"testing"
)

func TestFillUint64MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a, b := New(uint64(n)+3), New(uint64(n)+3)
		got := make([]uint64, n)
		a.FillUint64(got)
		for i, v := range got {
			if want := b.Uint64(); v != want {
				t.Fatalf("n=%d: FillUint64[%d] = %#x, sequential Uint64 = %#x", n, i, v, want)
			}
		}
		// The fill must leave the generator at the same point.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: state diverged after fill", n)
		}
	}
}

func TestFillFloat64MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 13, 512} {
		a, b := New(uint64(n)+11), New(uint64(n)+11)
		got := make([]float64, n)
		a.FillFloat64(got)
		for i, v := range got {
			if want := b.Float64(); v != want {
				t.Fatalf("n=%d: FillFloat64[%d] = %v, sequential Float64 = %v", n, i, v, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: state diverged after fill", n)
		}
	}
}

// intnFillReference implements Fill's documented canonical draw order with
// plain scalar code: one bulk word column, then redraws for rejected slots
// in ascending index order.
func intnFillReference(g *IntnSampler, s *Source, n int) []int32 {
	words := make([]uint64, n)
	for i := range words {
		words[i] = s.Uint64()
	}
	dst := make([]int32, n)
	for i, v := range words {
		if g.mask != 0 || g.n == 1 {
			dst[i] = int32(v & g.mask)
			continue
		}
		for {
			hi, lo := bits.Mul64(v, g.n)
			if lo >= g.threshold {
				dst[i] = int32(hi)
				break
			}
			v = s.Uint64()
		}
	}
	return dst
}

func TestIntnFillMatchesReference(t *testing.T) {
	// 9 and 72 are the Lemire path (9 = ChipsPerRank in the paper config);
	// 1, 4 and 8 the mask path. Real thresholds for small n reject ~never,
	// so a forged ~50% threshold (same constants on both sides) makes the
	// redraw loop actually run.
	for _, tc := range []struct {
		n         uint64
		threshold uint64
	}{{1, 0}, {4, 0}, {8, 0}, {9, 0}, {72, 0}, {9, 1 << 63}} {
		n := tc.n
		g := IntnSampler{n: n}
		if tc.threshold != 0 {
			g.threshold = tc.threshold
		} else if n&(n-1) == 0 {
			g.mask = n - 1
		} else {
			g.threshold = -n % n
		}
		a, b := New(n), New(n)
		const cnt = 200
		got := make([]int32, cnt)
		g.Fill(a, got, make([]uint64, cnt))
		want := intnFillReference(&g, b, cnt)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Fill[%d] = %d, reference = %d", n, i, got[i], want[i])
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: state diverged after fill", n)
		}
		for i, v := range got {
			if uint64(v) >= n {
				t.Fatalf("n=%d: Fill[%d] = %d out of range", n, i, v)
			}
		}
	}
}

func TestIntnFillMatchesSamplerConstants(t *testing.T) {
	// NewIntnSampler's constants drive both Sample and Fill; a mask/Lemire
	// disagreement between the two would skew every geometry column.
	for _, n := range []int{1, 2, 3, 4, 9, 18, 72} {
		g := NewIntnSampler(n)
		a, b := New(uint64(n)*77), New(uint64(n)*77)
		got := make([]int32, 300)
		g.Fill(a, got, make([]uint64, 300))
		want := intnFillReference(&g, b, 300)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Fill[%d] = %d, reference = %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestWeightedLookupMatchesSample(t *testing.T) {
	w := NewWeightedSampler([]float64{14.2, 1.4, 1.4, 0.2, 5.0, 0.8, 0.3, 0.9})
	u, s := New(5), New(5)
	for i := 0; i < 10000; i++ {
		if got, want := w.Lookup(u.Float64()), w.Sample(s); got != want {
			t.Fatalf("draw %d: Lookup = %d, Sample = %d", i, got, want)
		}
	}
}

func TestTruncPoissonLookupMatchesLinearScan(t *testing.T) {
	linear := func(tp *TruncPoisson, u float64) int {
		k := 0
		for k < len(tp.cdf) && u >= tp.cdf[k] {
			k++
		}
		if k < len(tp.cdf) {
			return k + 1
		}
		u -= tp.cdf[len(tp.cdf)-1]
		k = len(tp.cdf) + 1
		pk := tp.tailPmf
		for {
			u -= pk
			if u < 0 || pk == 0 {
				return k
			}
			k++
			pk *= tp.p.mean / float64(k)
		}
	}
	for _, mean := range []float64{1e-6, 1e-3, 0.29, 1, 3.7, 15, 29.9} {
		tp := NewTruncPoisson(mean)
		if len(tp.cdf) == 0 {
			t.Fatalf("mean=%v: no CDF built", mean)
		}
		s := New(uint64(mean*1e6) + 1)
		for i := 0; i < 20000; i++ {
			u := s.Float64()
			if got, want := tp.Lookup(u), linear(&tp, u); got != want {
				t.Fatalf("mean=%v u=%v: guide Lookup = %d, linear scan = %d", mean, u, got, want)
			}
		}
		// Boundary values: exactly at and one ulp below each CDF entry.
		for i, c := range tp.cdf {
			for _, u := range []float64{math.Nextafter(c, 0), c} {
				if u < 0 || u >= 1 {
					continue
				}
				if got, want := tp.Lookup(u), linear(&tp, u); got != want {
					t.Fatalf("mean=%v cdf[%d] boundary u=%v: Lookup = %d, linear = %d", mean, i, u, got, want)
				}
			}
		}
	}
}

func TestTruncPoissonMatchesSamplePositiveLaw(t *testing.T) {
	// The guide-table inversion and SamplePositive's subtractive walk must
	// agree in distribution (they are not uniform-for-uniform identical).
	// Compare per-value frequencies at ~6 sigma over a deterministic run.
	for _, mean := range []float64{0.29, 3.0, 35} {
		tp := NewTruncPoisson(mean)
		ps := NewPoissonSampler(mean)
		const n = 200000
		a, b := New(101), New(202)
		countsA := map[int]int{}
		countsB := map[int]int{}
		for i := 0; i < n; i++ {
			countsA[tp.Sample(a)]++
			countsB[ps.SamplePositive(b)]++
		}
		for k := 1; k < 80; k++ {
			ca, cb := float64(countsA[k]), float64(countsB[k])
			tol := 6*math.Sqrt(ca+cb+10) + 1
			if math.Abs(ca-cb) > tol {
				t.Errorf("mean=%v k=%d: TruncPoisson %v vs SamplePositive %v (tol %v)", mean, k, ca, cb, tol)
			}
		}
		for k := range countsA {
			if k < 1 {
				t.Fatalf("mean=%v: TruncPoisson emitted %d < 1", mean, k)
			}
		}
	}
}

func TestNextPositiveRunsInvariants(t *testing.T) {
	for _, mean := range []float64{1e-5, 0.01, 0.29, 2.5, 40} {
		tp := NewTruncPoisson(mean)
		s := New(uint64(mean*1e4) + 9)
		var runs []PosRun
		for chunk := 0; chunk < 200; chunk++ {
			const budget = 257
			runs = tp.NextPositiveRuns(s, budget, runs[:0])
			used := 0
			for _, r := range runs {
				if r.Skip < 0 || r.Count < 1 {
					t.Fatalf("mean=%v: bad run %+v", mean, r)
				}
				used += int(r.Skip) + 1
			}
			if used > budget {
				t.Fatalf("mean=%v: runs consume %d > budget %d", mean, used, budget)
			}
		}
	}
	// Non-positive mean: no runs, no draws.
	tp := NewTruncPoisson(0)
	s := New(1)
	before := s.State()
	if got := tp.NextPositiveRuns(s, 100, nil); len(got) != 0 {
		t.Fatalf("mean<=0: got %d runs, want 0", len(got))
	}
	if s.State() != before {
		t.Fatal("mean<=0: NextPositiveRuns consumed randomness")
	}
}

func TestNextPositiveRunsLaw(t *testing.T) {
	// Against the scalar campaign loop's law: the fraction of non-empty
	// trials is 1-e^-mean and the mean faults per trial is mean. 6-sigma
	// tolerances on a fixed seed keep this deterministic.
	for _, mean := range []float64{0.05, 0.29, 1.7} {
		tp := NewTruncPoisson(mean)
		s := New(uint64(mean*1e3) + 31)
		const budget, chunks = 4096, 200
		total := budget * chunks
		nonEmpty, faults := 0, 0
		var runs []PosRun
		for c := 0; c < chunks; c++ {
			runs = tp.NextPositiveRuns(s, budget, runs[:0])
			nonEmpty += len(runs)
			for _, r := range runs {
				faults += int(r.Count)
			}
		}
		p := 1 - math.Exp(-mean)
		wantNonEmpty := p * float64(total)
		if tol := 6 * math.Sqrt(wantNonEmpty*(1-p)); math.Abs(float64(nonEmpty)-wantNonEmpty) > tol {
			t.Errorf("mean=%v: %d non-empty trials, want %.0f +/- %.0f", mean, nonEmpty, wantNonEmpty, tol)
		}
		wantFaults := mean * float64(total)
		if tol := 6 * math.Sqrt(wantFaults); math.Abs(float64(faults)-wantFaults) > tol {
			t.Errorf("mean=%v: %d faults, want %.0f +/- %.0f", mean, faults, wantFaults, tol)
		}
	}
}
