package simrand

import "errors"

// State is the complete serializable state of a Source: the four xoshiro256**
// words. A captured State replays the generator's future exactly, which is
// what lets a Monte-Carlo campaign checkpoint mid-stream and lets a
// TrialError carry everything needed to regenerate one trial in isolation.
type State [4]uint64

// State snapshots the generator. The snapshot is a value copy; advancing s
// afterwards does not disturb it.
func (s *Source) State() State {
	return State{s.s0, s.s1, s.s2, s.s3}
}

// ErrInvalidState rejects the all-zero state, which xoshiro256** can never
// reach and from which it would emit zeros forever.
var ErrInvalidState = errors.New("simrand: all-zero state is not a valid xoshiro256** state")

// SetState restores a previously captured State. The zero State is invalid.
func (s *Source) SetState(st State) error {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		return ErrInvalidState
	}
	s.s0, s.s1, s.s2, s.s3 = st[0], st[1], st[2], st[3]
	return nil
}

// Restore returns a Source continuing from a captured State.
func Restore(st State) (*Source, error) {
	var s Source
	if err := s.SetState(st); err != nil {
		return nil, err
	}
	return &s, nil
}

// streamKey folds a logical (seed, stream) pair into one 64-bit seed with a
// splitmix64 finalizer round. Distinct streams of one seed — and the same
// stream index under distinct seeds — land on uncorrelated keys, and the
// 4-round splitmix64 expansion in seed() scrambles them further.
func streamKey(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedStream reinitialises s in place as substream `stream` of the logical
// seed. It is the campaign engine's stream-splitting primitive: every chunk
// of trials owns substream(campaignSeed, chunkIndex), so the trial sequence
// is a pure function of (seed, chunk layout) and entirely independent of
// how chunks are scheduled across workers. Reseeding in place keeps the hot
// loop allocation-free (New escapes to the heap).
func (s *Source) SeedStream(seed, stream uint64) {
	s.seed(streamKey(seed, stream))
}

// NewStream returns a fresh Source for substream `stream` of the logical
// seed; see SeedStream.
func NewStream(seed, stream uint64) *Source {
	var s Source
	s.SeedStream(seed, stream)
	return &s
}
