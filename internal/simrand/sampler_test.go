package simrand

import (
	"math"
	"testing"
)

// TestPoissonSamplerStreamIdentical: the cached-constant sampler must
// consume the same uniforms and return the same variates as the ad-hoc
// Source.Poisson, so call sites can switch without perturbing streams.
func TestPoissonSamplerStreamIdentical(t *testing.T) {
	for _, mean := range []float64{0.05, 0.29, 1, 7.5, 29.9, 30, 120} {
		p := NewPoissonSampler(mean)
		a, b := New(42), New(42)
		for i := 0; i < 5000; i++ {
			got, want := p.Sample(a), b.Poisson(mean)
			if got != want {
				t.Fatalf("mean %v draw %d: sampler %d != Poisson %d", mean, i, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("mean %v: streams diverged", mean)
		}
	}
}

// TestNextPositiveDistribution: accounting skipped zero-trials wholesale
// must reproduce the plain per-trial Poisson statistics — same zero
// fraction, same conditional mean of the positive draws.
func TestNextPositiveDistribution(t *testing.T) {
	for _, mean := range []float64{0.05, 0.29, 2.5, 40} {
		p := NewPoissonSampler(mean)
		s := New(99)
		const trials = 400_000
		zeros, sum, positives := 0, 0, 0
		done := 0
		for done < trials {
			skipped, n := p.NextPositive(s)
			if skipped >= trials-done {
				zeros += trials - done
				done = trials
				break
			}
			zeros += skipped
			done += skipped + 1
			sum += n
			positives++
		}
		gotPZero := float64(zeros) / trials
		wantPZero := math.Exp(-mean)
		if math.Abs(gotPZero-wantPZero) > 5*math.Sqrt(wantPZero*(1-wantPZero)/trials)+1e-4 {
			t.Errorf("mean %v: P(0) = %.5f, want %.5f", mean, gotPZero, wantPZero)
		}
		gotMean := float64(sum) / float64(trials)
		if math.Abs(gotMean-mean) > 6*math.Sqrt(mean/trials)+1e-3 {
			t.Errorf("mean %v: sample mean %.5f", mean, gotMean)
		}
		_ = positives
	}
}

// TestSamplePositiveDistribution checks the zero-truncated inversion
// against the analytic zero-truncated pmf for k = 1..3.
func TestSamplePositiveDistribution(t *testing.T) {
	mean := 0.29
	p := NewPoissonSampler(mean)
	s := New(5)
	const n = 300_000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		k := p.SamplePositive(s)
		if k < 1 {
			t.Fatalf("SamplePositive returned %d", k)
		}
		counts[k]++
	}
	q := math.Exp(-mean)
	pk := mean * q / (1 - q) // P(1 | N >= 1)
	for k := 1; k <= 3; k++ {
		got := float64(counts[k]) / n
		if math.Abs(got-pk) > 5*math.Sqrt(pk*(1-pk)/n)+1e-4 {
			t.Errorf("P(%d) = %.5f, want %.5f", k, got, pk)
		}
		pk *= mean / float64(k+1)
	}
}

// TestSkipZerosDistribution checks the geometric inversion including the
// table/log boundary.
func TestSkipZerosDistribution(t *testing.T) {
	mean := 0.03 // q = 0.9704: long runs exercise the table and the tail
	p := NewPoissonSampler(mean)
	s := New(11)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(p.SkipZeros(s))
	}
	q := math.Exp(-mean)
	want := q / (1 - q)
	got := sum / n
	sd := math.Sqrt(q) / (1 - q)
	if math.Abs(got-want) > 5*sd/math.Sqrt(n) {
		t.Errorf("mean skip %.3f, want %.3f", got, want)
	}
}

// TestIntnSamplerStreamIdentical: cached Lemire threshold must match
// Source.Intn draw for draw.
func TestIntnSamplerStreamIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 13, 72, 1 << 20, 1<<20 + 7} {
		g := NewIntnSampler(n)
		a, b := New(1234), New(1234)
		for i := 0; i < 3000; i++ {
			got, want := g.Sample(a), b.Intn(n)
			if got != want {
				t.Fatalf("n %d draw %d: sampler %d != Intn %d", n, i, got, want)
			}
		}
	}
}

// TestWeightedSamplerDistribution: alias-table frequencies must match the
// weight vector.
func TestWeightedSamplerDistribution(t *testing.T) {
	weights := []float64{14.2, 18.6, 1.4, 0.3, 1.4, 5.6, 0.2, 8.2, 0.8, 10, 0.3, 1.4, 0.9, 2.8}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	ws := NewWeightedSampler(weights)
	s := New(77)
	const n = 500_000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		k := ws.Sample(s)
		if k < 0 || k >= len(weights) {
			t.Fatalf("index %d out of range", k)
		}
		counts[k]++
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n)+1e-4 {
			t.Errorf("class %d: freq %.5f, want %.5f", i, got, want)
		}
	}
}

// TestWeightedSamplerDegenerate: single-class and zero-weight entries.
func TestWeightedSamplerDegenerate(t *testing.T) {
	ws := NewWeightedSampler([]float64{0, 3.5, 0})
	s := New(3)
	for i := 0; i < 10_000; i++ {
		if k := ws.Sample(s); k != 1 {
			t.Fatalf("zero-weight class %d drawn", k)
		}
	}
}
