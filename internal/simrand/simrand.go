// Package simrand provides a small, fast, deterministic random number
// generator for the simulators in this module.
//
// Reliability results must be reproducible run-to-run (the experiment
// harness reports exact numbers into EXPERIMENTS.md), and the Monte-Carlo
// fault simulator draws billions of variates, so we use xoshiro256** seeded
// via splitmix64 rather than math/rand's global, locked source. Each
// goroutine owns its own *Source; the type is deliberately not safe for
// concurrent use.
package simrand

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256** pseudo-random generator. The zero value is not a
// valid generator; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield statistically independent streams (seeded through splitmix64, the
// construction recommended by the xoshiro authors).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	src.s0, src.s1, src.s2, src.s3 = next(), next(), next(), next()
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if src.s0|src.s1|src.s2|src.s3 == 0 {
		src.s0 = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Jump advances the generator 2^128 steps, equivalent to 2^128 calls to
// Uint64. It is used to derive non-overlapping streams for worker
// goroutines that must share one logical seed.
func (s *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= s.s0
				t1 ^= s.s1
				t2 ^= s.s2
				t3 ^= s.s3
			}
			s.Uint64()
		}
	}
	s.s0, s.s1, s.s2, s.s3 = t0, t1, t2, t3
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion. Scale by 1/rate for other rates.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson-distributed variate with the given mean.
// It uses Knuth multiplication for small means and the PTRS transformed
// rejection method for large means; both are exact.
func (s *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		// Knuth: multiply uniforms until the product drops below e^-mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return s.poissonPTRS(mean)
	}
}

// poissonPTRS implements Hörmann's PTRS rejection sampler (1993), valid for
// mean >= 10; we use it above 30 where it is unambiguously faster.
func (s *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Binomial returns a Binomial(n, p) variate. For small n it flips n coins;
// for large n with small mean it samples via waiting times (geometric
// skipping), which is O(np) instead of O(n).
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 32 {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	// Geometric skipping: the gap between successes is geometric.
	logq := math.Log1p(-p)
	k := 0
	i := 0
	for {
		u := s.Float64()
		if u <= 0 {
			continue
		}
		i += int(math.Log(u)/logq) + 1
		if i > n {
			return k
		}
		k++
	}
}

// Perm fills out with a uniformly random permutation of 0..len(out)-1.
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
