// Package simrand provides a small, fast, deterministic random number
// generator for the simulators in this module.
//
// Reliability results must be reproducible run-to-run (the experiment
// harness reports exact numbers into EXPERIMENTS.md), and the Monte-Carlo
// fault simulator draws billions of variates, so we use xoshiro256** seeded
// via splitmix64 rather than math/rand's global, locked source. Each
// goroutine owns its own *Source; the type is deliberately not safe for
// concurrent use.
package simrand

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256** pseudo-random generator. The zero value is not a
// valid generator; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield statistically independent streams (seeded through splitmix64, the
// construction recommended by the xoshiro authors).
func New(seed uint64) *Source {
	var src Source
	src.seed(seed)
	return &src
}

// seed (re)initialises the generator in place from a 64-bit seed via four
// rounds of splitmix64.
func (s *Source) seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Jump advances the generator 2^128 steps, equivalent to 2^128 calls to
// Uint64. It is used to derive non-overlapping streams for worker
// goroutines that must share one logical seed.
func (s *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= s.s0
				t1 ^= s.s1
				t2 ^= s.s2
				t3 ^= s.s3
			}
			s.Uint64()
		}
	}
	s.s0, s.s1, s.s2, s.s3 = t0, t1, t2, t3
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion. Scale by 1/rate for other rates.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson-distributed variate with the given mean.
// It uses Knuth multiplication for small means and the PTRS transformed
// rejection method for large means; both are exact.
func (s *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		// Knuth: multiply uniforms until the product drops below e^-mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return s.poissonPTRS(mean)
	}
}

// poissonPTRS implements Hörmann's PTRS rejection sampler (1993), valid for
// mean >= 10; we use it above 30 where it is unambiguously faster.
func (s *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// PoissonSampler draws Poisson variates for one fixed mean with the
// per-mean constants (exp(-mean), PTRS coefficients) computed once. The
// Monte-Carlo fault generator draws one Poisson variate per trial at a
// constant mean, and math.Exp(-mean) inside Poisson was ~25% of the whole
// campaign's CPU time before this was hoisted.
type PoissonSampler struct {
	mean       float64
	expNegMean float64 // e^-mean; also P(N == 0)
	small      bool
	// PTRS constants (mean >= 30 path).
	b, a, invAlpha, vr, logMean float64
	// skipPow[k] = (e^-mean)^k: geometric-inversion thresholds for
	// SkipZeros. A table scan replaces a ~50ns math.Log for all but the
	// q^32 tail of runs.
	skipPow [skipPowLen]float64
	// skipGuide[j] = min{k >= 1 : skipPow[k+1] < (j+1)/skipGuideLen}, a
	// lower bound on SkipZeros' answer for any u in bucket j. At 512
	// buckets the ~32 threshold crossings each land in one bucket, so for
	// ~94% of draws the scan exits without iterating — the branch
	// predictor sees an almost-always-false loop instead of a coin toss —
	// while the whole table stays resident in eight cache lines.
	skipGuide [skipGuideLen]uint8
}

const (
	skipPowLen   = 33
	skipGuideLen = 512
)

// NewPoissonSampler precomputes the sampling constants for the given mean.
func NewPoissonSampler(mean float64) PoissonSampler {
	p := PoissonSampler{mean: mean}
	if mean <= 0 {
		p.expNegMean = 1
		p.small = true
		return p
	}
	p.expNegMean = math.Exp(-mean)
	p.skipPow[0] = 1
	for k := 1; k < skipPowLen; k++ {
		p.skipPow[k] = p.skipPow[k-1] * p.expNegMean
	}
	// The bucket threshold (j+1)/skipGuideLen rises with j while skipPow
	// falls with k, so the guide is non-increasing in j: one backward walk
	// with a shared cursor builds all buckets in O(skipGuideLen) instead
	// of rescanning the power table per bucket. Capped at skipPowLen-2 so
	// the scan's skipPow[k+1] access stays in bounds; a lower start is
	// always safe (it only adds steps).
	k := 1
	for j := skipGuideLen - 1; j >= 0; j-- {
		thr := float64(j+1) / skipGuideLen
		for k+1 < skipPowLen-1 && p.skipPow[k+1] >= thr {
			k++
		}
		p.skipGuide[j] = uint8(k)
	}
	if mean < 30 {
		p.small = true
		return p
	}
	p.b = 0.931 + 2.53*math.Sqrt(mean)
	p.a = -0.059 + 0.02483*p.b
	p.invAlpha = 1.1239 + 1.1328/(p.b-3.4)
	p.vr = 0.9277 - 3.6224/(p.b-2)
	p.logMean = math.Log(mean)
	return p
}

// Mean returns the sampler's mean.
func (p *PoissonSampler) Mean() float64 { return p.mean }

// PZero returns P(N == 0) = e^-mean.
func (p *PoissonSampler) PZero() float64 { return p.expNegMean }

// Sample draws one variate. It consumes the same uniforms in the same
// order as Source.Poisson(mean), so switching call sites preserves streams.
func (p *PoissonSampler) Sample(s *Source) int {
	if p.mean <= 0 {
		return 0
	}
	if p.small {
		k := 0
		prod := 1.0
		for {
			prod *= s.Float64()
			if prod <= p.expNegMean {
				return k
			}
			k++
		}
	}
	return p.samplePTRS(s)
}

func (p *PoissonSampler) samplePTRS(s *Source) int {
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*p.a/us+p.b)*u + p.mean + 0.43)
		if us >= 0.07 && v <= p.vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*p.invAlpha/(p.a/(us*us)+p.b)) <= k*p.logMean-p.mean-lg {
			return int(k)
		}
	}
}

// NextPositive returns (skipped, n): the length of the run of consecutive
// zero variates preceding the next positive one, and that variate. It is
// how the Monte-Carlo campaign loop consumes the trial-count stream — a
// zero-fault trial needs no evaluation, so the caller accounts `skipped`
// survivors wholesale. Zeros cost one uniform each (the first Knuth draw
// decides emptiness), except at minuscule means where a log-inversion
// geometric jumps the whole run at once.
func (p *PoissonSampler) NextPositive(s *Source) (skipped, n int) {
	if p.mean <= 0 {
		panic("simrand: NextPositive with non-positive mean")
	}
	if !p.small {
		// Zeros occur with probability ~e^-30: just loop.
		for {
			if n = p.Sample(s); n > 0 {
				return skipped, n
			}
			skipped++
		}
	}
	if p.mean < 1e-3 {
		// Zero runs average >1000 trials: jump them in one draw.
		return p.SkipZeros(s), p.SamplePositive(s)
	}
	l := p.expNegMean
	for {
		u := s.Float64()
		if u > l {
			// Non-empty: continue the Knuth product from prod=u, k=1.
			n = 1
			prod := u
			for {
				prod *= s.Float64()
				if prod <= l {
					return skipped, n
				}
				n++
			}
		}
		skipped++
	}
}

// SamplePositive draws a zero-truncated Poisson variate (N >= 1) by
// inversion on the truncated CDF. Together with SkipZeros it decomposes the
// i.i.d. Poisson trial sequence exactly: a geometric run of N==0 trials
// followed by one N>=1 trial, without spending any uniforms on the zeros.
func (p *PoissonSampler) SamplePositive(s *Source) int {
	if p.mean <= 0 {
		panic("simrand: SamplePositive with non-positive mean")
	}
	if !p.small {
		// Truncation is a no-op correction at large means (P(0) ~ e^-30);
		// rejection terminates almost immediately.
		for {
			if k := p.samplePTRS(s); k >= 1 {
				return k
			}
		}
	}
	u := s.Float64() * (1 - p.expNegMean)
	k := 1
	pk := p.mean * p.expNegMean // P(N == 1)
	for {
		u -= pk
		if u < 0 || pk == 0 {
			return k
		}
		k++
		pk *= p.mean / float64(k)
	}
}

// SkipZeros returns a Geometric(1 - e^-mean) variate: how many consecutive
// trials draw N == 0 before the next N >= 1 trial. Exact inversion — skip k
// iff q^(k+1) <= u < q^k for q = P(N==0) — resolved against the
// precomputed power table, falling back to a logarithm only for the q^32
// run-length tail. Costs one uniform.
func (p *PoissonSampler) SkipZeros(s *Source) int {
	if p.mean <= 0 {
		panic("simrand: SkipZeros with non-positive mean")
	}
	u := s.Float64()
	if u >= p.skipPow[1] {
		return 0
	}
	if u >= p.skipPow[skipPowLen-1] {
		// The guide entry is a proven lower bound for every u in its
		// bucket (u < (j+1)/skipGuideLen), so scanning up from it lands on
		// exactly the k the full scan from 1 would: skip k iff
		// q^(k+1) <= u < q^k.
		k := int(p.skipGuide[int(u*skipGuideLen)])
		for u < p.skipPow[k+1] {
			k++
		}
		return k
	}
	if u <= 0 {
		return 1 << 62 // P = 2^-53: treat as an endless zero run
	}
	// floor(log(u)/log(q)) = floor(log(u)/-mean).
	v := math.Log(u) / -p.mean
	if v >= 1<<62 {
		return 1 << 62 // clamp: float→int overflow at minuscule means
	}
	return int(v)
}

// IntnSampler draws uniform ints in [0, n) with the Lemire rejection
// threshold (a 64-bit division) computed once instead of per draw.
type IntnSampler struct {
	n         uint64
	mask      uint64 // n-1 when n is a power of two, else 0
	threshold uint64
}

// NewIntnSampler precomputes the rejection threshold for Intn(n).
func NewIntnSampler(n int) IntnSampler {
	if n <= 0 {
		panic("simrand: IntnSampler with non-positive n")
	}
	un := uint64(n)
	if un&(un-1) == 0 {
		return IntnSampler{n: un, mask: un - 1}
	}
	return IntnSampler{n: un, threshold: -un % un}
}

// Sample draws one int. It consumes the same uniforms in the same order as
// Source.Intn(n).
func (g *IntnSampler) Sample(s *Source) int {
	if g.mask != 0 || g.n == 1 {
		return int(s.Uint64() & g.mask)
	}
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, g.n)
		if lo >= g.threshold {
			return int(hi)
		}
	}
}

// WeightedSampler draws category indices proportionally to a fixed weight
// vector in O(1) per draw via Walker/Vose alias tables — one uniform, one
// comparison — replacing the linear cumulative scan the fault generator
// used per emitted record.
type WeightedSampler struct {
	prob  []float64
	alias []int32
}

// NewWeightedSampler builds the alias table (Vose's algorithm) for the
// given non-negative weights. It panics if no weight is positive.
func NewWeightedSampler(weights []float64) WeightedSampler {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("simrand: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("simrand: no positive weight")
	}
	ws := WeightedSampler{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		ws.prob[s] = scaled[s]
		ws.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers land on probability 1.
	for _, i := range large {
		ws.prob[i] = 1
		ws.alias[i] = i
	}
	for _, i := range small {
		ws.prob[i] = 1
		ws.alias[i] = i
	}
	return ws
}

// Sample draws one index. It costs exactly one uniform.
func (w *WeightedSampler) Sample(s *Source) int {
	return w.Lookup(s.Float64())
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Binomial returns a Binomial(n, p) variate. For small n it flips n coins;
// for large n with small mean it samples via waiting times (geometric
// skipping), which is O(np) instead of O(n).
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 32 {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	// Geometric skipping: the gap between successes is geometric.
	logq := math.Log1p(-p)
	k := 0
	i := 0
	for {
		u := s.Float64()
		if u <= 0 {
			continue
		}
		i += int(math.Log(u)/logq) + 1
		if i > n {
			return k
		}
		k++
	}
}

// Perm fills out with a uniformly random permutation of 0..len(out)-1.
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
