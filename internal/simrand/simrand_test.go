package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds nearly identical (%d collisions)", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	sum := 0.0
	const n = 200_000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.495 || mean > 0.505 {
		t.Fatalf("Float64 mean %v, want ≈0.5", mean)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(2)
	const buckets = 7
	counts := make([]int, buckets)
	const n = 700_000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if f := float64(c); f < want*0.98 || f > want*1.02 {
			t.Fatalf("bucket %d count %d, want ≈%v", b, c, want)
		}
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(3)
	for i := 0; i < 10_000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 300_000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; mean < 0.99 || mean > 1.01 {
		t.Fatalf("exponential mean %v, want ≈1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(5)
	for _, mean := range []float64{0.01, 0.5, 3, 29, 35, 200} {
		const n = 120_000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		tol := 4 * math.Sqrt(mean/n) * math.Max(1, math.Sqrt(mean))
		if math.Abs(m-mean) > math.Max(tol, 0.01) {
			t.Fatalf("Poisson(%v) mean %v", mean, m)
		}
		// Poisson variance equals the mean.
		if mean >= 0.5 && (variance < mean*0.93 || variance > mean*1.07) {
			t.Fatalf("Poisson(%v) variance %v", mean, variance)
		}
	}
	if New(1).Poisson(0) != 0 || New(1).Poisson(-1) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(6)
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {1000, 0.001}, {1000, 0.8}, {64, 0.5}}
	for _, c := range cases {
		const trials = 80_000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.01 {
			t.Fatalf("Binomial(%d,%v) mean %v, want %v", c.n, c.p, mean, want)
		}
	}
	if New(1).Binomial(10, 0) != 0 || New(1).Binomial(10, 1) != 10 || New(1).Binomial(0, 0.5) != 0 {
		t.Fatal("binomial edge cases")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(7)
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Fatal("Bernoulli edges wrong")
	}
	hits := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if f := float64(hits) / n; f < 0.24 || f > 0.26 {
		t.Fatalf("Bernoulli(0.25) rate %v", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJumpProducesDisjointStream(t *testing.T) {
	a := New(9)
	b := New(9)
	b.Jump()
	same := 0
	for i := 0; i < 10_000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream overlaps: %d matches", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(0.3)
	}
	_ = sink
}

func BenchmarkPoissonLargeMean(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(500)
	}
	_ = sink
}
