// Batch sampling primitives for the structure-of-arrays trial generator.
//
// The scalar samplers in this package draw one variate per call; the batch
// campaign generator (internal/faultsim, -gen=batch) instead samples whole
// chunk columns at a time. The primitives here keep the xoshiro state in
// registers across a fill, replace the per-draw truncated-Poisson CDF walk
// with a guide-table lookup, and amortize the Lemire bounded-draw rejection
// over a pre-filled word column. All of them are exact: each produces the
// same distribution as its scalar counterpart (several, noted below, consume
// uniforms in a different order, which is why -gen=batch is a distinct,
// conformance-gated stream rather than a bit-identical drop-in).

package simrand

import "math/bits"

// FillUint64 fills dst with the next len(dst) outputs of the generator, in
// order — identical to calling Uint64 len(dst) times, but with the state
// kept in locals across the loop.
func (s *Source) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FillFloat64 fills dst with uniform float64s in [0, 1), identical to
// calling Float64 len(dst) times.
func (s *Source) FillFloat64(dst []float64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		w := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		dst[i] = float64(w>>11) * (1.0 / (1 << 53))
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// Fill fills dst with uniform ints in [0, n), consuming one pre-drawn word
// per element from a bulk FillUint64 pass over words (which must have
// len(words) >= len(dst)), then resolving Lemire rejections — vanishingly
// rare for the small n used here — with scalar redraws in ascending index
// order. The draw order (column first, then fix-ups) differs from repeated
// Sample calls but the per-element distribution is identical: accepted
// words map exactly as in Sample, and each rejected slot redraws from the
// same rejection loop.
func (g *IntnSampler) Fill(s *Source, dst []int32, words []uint64) {
	words = words[:len(dst)]
	s.FillUint64(words)
	if g.mask != 0 || g.n == 1 {
		mask := g.mask
		for i, v := range words {
			dst[i] = int32(v & mask)
		}
		return
	}
	n, threshold := g.n, g.threshold
	for i, v := range words {
		hi, lo := bits.Mul64(v, n)
		for lo < threshold {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
		dst[i] = int32(hi)
	}
}

// Lookup resolves one alias-table draw from a uniform u in [0, 1). Sample
// is Lookup composed with Float64; the batch generator separates the two so
// the uniforms can come from a FillFloat64 column.
func (w *WeightedSampler) Lookup(u float64) int {
	u *= float64(len(w.prob))
	i := int(u)
	if i >= len(w.prob) {
		i = len(w.prob) - 1
	}
	if u-float64(i) < w.prob[i] {
		return i
	}
	return int(w.alias[i])
}

// PosRun is one entry of the chunk arrival plan produced by
// NextPositiveRuns: Skip consecutive trials drew zero faults, then one
// trial drew Count (>= 1) faults.
type PosRun struct {
	Skip  int32
	Count int32
}

// truncGuideSize buckets the unit interval for the guide table; 128 entries
// put the expected forward scan below one step for any mean under 30.
const truncGuideSize = 128

// truncCDFMax caps the precomputed CDF length. mean+12 standard deviations
// stays under 100 for every mean below 30, so the cap is never the binding
// limit; Lookup extends the recurrence past the table for the (< 2^-53)
// residual tail regardless.
const truncCDFMax = 512

// TruncPoisson draws zero-truncated Poisson variates (N >= 1) for one fixed
// mean via guide-table CDF inversion: one uniform, one table lookup, and an
// expected O(1) forward scan, replacing SamplePositive's subtractive CDF
// walk (O(mean) per draw). For mean >= 30 it falls back to PTRS rejection,
// where truncation is a ~e^-30 no-op. Distribution-exact with respect to
// the truncated pmf, but NOT uniform-for-uniform identical to
// SamplePositive: the two resolve the same inversion with differently
// rounded partial sums.
type TruncPoisson struct {
	p       PoissonSampler
	cdf     []float64 // cdf[i] = P(N <= i+1 | N >= 1); empty when !p.small
	cdf0    float64   // cdf[0], inline: the k=1 mass dominates at small means
	guide   []int32   // guide[j] = min{i : cdf[i] > j/truncGuideSize}
	tailPmf float64   // P(N == len(cdf)+1 | N >= 1), for the residual tail
}

// NewTruncPoisson precomputes the truncated CDF and guide table for the
// given mean. A non-positive mean yields a sampler whose NextPositiveRuns
// returns no runs (every trial is empty) and whose Sample panics.
func NewTruncPoisson(mean float64) TruncPoisson {
	t := TruncPoisson{p: NewPoissonSampler(mean)}
	if mean <= 0 || !t.p.small {
		return t
	}
	// pk = P(N == k | N >= 1), built by the same recurrence SamplePositive
	// walks, accumulated once.
	norm := 1 - t.p.expNegMean
	pk := t.p.mean * t.p.expNegMean / norm // k = 1
	c := 0.0
	k := 1
	for {
		c += pk
		t.cdf = append(t.cdf, c)
		k++
		pk *= t.p.mean / float64(k)
		if (1-c < 1e-18 && len(t.cdf) >= 2) || len(t.cdf) >= truncCDFMax || pk == 0 {
			break
		}
	}
	t.tailPmf = pk
	t.cdf0 = t.cdf[0]
	t.guide = make([]int32, truncGuideSize)
	i := 0
	for j := range t.guide {
		thr := float64(j) / truncGuideSize
		for i < len(t.cdf) && t.cdf[i] <= thr {
			i++
		}
		t.guide[j] = int32(i)
	}
	return t
}

// Mean returns the sampler's (untruncated) mean.
func (t *TruncPoisson) Mean() float64 { return t.p.mean }

// Sample draws one zero-truncated variate. Costs one uniform on the
// guide-table path.
func (t *TruncPoisson) Sample(s *Source) int {
	if t.p.mean <= 0 {
		panic("simrand: TruncPoisson.Sample with non-positive mean")
	}
	if !t.p.small {
		for {
			if k := t.p.samplePTRS(s); k >= 1 {
				return k
			}
		}
	}
	return t.Lookup(s.Float64())
}

// Lookup inverts the truncated CDF at u in [0, 1): it returns the smallest
// k >= 1 with u < P(N <= k | N >= 1). Exposed so tests can compare the
// guide-table jump against a plain linear scan over the same table.
func (t *TruncPoisson) Lookup(u float64) int {
	// Inline k=1 exit: at the sub-1 means the campaign runs, most of the
	// truncated mass sits on a single fault, so one compare against the
	// struct-resident cdf[0] beats the guide's two dependent loads. Same
	// inversion: u < cdf[0] is exactly the guide path's k=1 verdict.
	if u < t.cdf0 {
		return 1
	}
	k := int(t.guide[int(u*truncGuideSize)])
	for k < len(t.cdf) && u >= t.cdf[k] {
		k++
	}
	if k < len(t.cdf) {
		return k + 1
	}
	// Residual tail past the table (probability < 2^-53 per draw when the
	// CDF converged; reachable only through the truncCDFMax cap, which no
	// mean under 30 hits). Continue the pmf recurrence.
	u -= t.cdf[len(t.cdf)-1]
	k = len(t.cdf) + 1
	pk := t.tailPmf
	for {
		u -= pk
		if u < 0 || pk == 0 {
			return k
		}
		k++
		pk *= t.p.mean / float64(k)
	}
}

// NextPositiveRuns plans the arrivals for a whole chunk of `budget` i.i.d.
// Poisson trials: it appends (Skip, Count) pairs to runs until the trials
// are exhausted and returns the extended slice. The decomposition is exact
// — a Geometric(1-e^-mean) run of zero trials, then one zero-truncated
// count — and the chunk boundary is handled without drawing a count: when
// the zero run covers every remaining trial (probability q^remaining,
// exactly the chance that all of them are empty), planning stops.
//
// The sum of (Skip+1) over the returned runs is at most budget; trials past
// the final run are all zero-fault.
func (t *TruncPoisson) NextPositiveRuns(s *Source, budget int, runs []PosRun) []PosRun {
	if t.p.mean <= 0 {
		return runs
	}
	for remaining := budget; remaining > 0; {
		skip := t.p.SkipZeros(s)
		if skip >= remaining {
			break
		}
		runs = append(runs, PosRun{Skip: int32(skip), Count: int32(t.Sample(s))})
		remaining -= skip + 1
	}
	return runs
}
