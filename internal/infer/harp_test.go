package infer

import (
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
)

func TestProfileChipClassifiesWords(t *testing.T) {
	chip := dram.NewChip(testGeom(), ecc.NewCRC8ATM())
	clean := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	atRisk := dram.WordAddr{Bank: 0, Row: 1, Col: 0} // single stuck bit: on-die corrects
	broken := dram.WordAddr{Bank: 1, Row: 2, Col: 3} // double stuck bits: uncorrectable
	chip.InjectFault(dram.NewBitFault(atRisk, 9, false))
	chip.InjectFault(dram.NewWordFault(broken, 1<<5|1<<33, 0, false))

	p := ProfileChip(chip, []dram.WordAddr{clean, atRisk, broken}, HARPOptions{Rounds: 6, Seed: 2})

	if w := p.Words[0]; w.AtRisk() || w.Uncorrectable() || w.Direct != 0 {
		t.Fatalf("clean word profiled as %+v", w)
	}
	if w := p.Words[1]; !w.AtRisk() || w.Uncorrectable() {
		// The on-die engine corrects the single stuck bit on every read:
		// full activity, zero direct errors.
		t.Fatalf("at-risk word profiled as %+v", w)
	} else if w.Activity != w.Reads {
		t.Fatalf("at-risk word: activity %d over %d reads, want every read", w.Activity, w.Reads)
	}
	if w := p.Words[2]; !w.Uncorrectable() {
		t.Fatalf("broken word profiled as %+v", w)
	} else if w.Direct != 1<<5|1<<33 {
		// CRC8 detects the double error and ships raw data: exactly the
		// two stuck positions read back wrong.
		t.Fatalf("broken word direct mask %#x, want %#x", w.Direct, uint64(1<<5|1<<33))
	} else if w.ErrorBits() != 2 {
		t.Fatalf("ErrorBits = %d, want 2", w.ErrorBits())
	}

	if got := p.PredictUncorrectable(); len(got) != 1 || got[0] != broken {
		t.Fatalf("PredictUncorrectable = %v, want [%v]", got, broken)
	}
	if got := p.PredictAtRisk(); len(got) != 2 || got[0] != atRisk || got[1] != broken {
		t.Fatalf("PredictAtRisk = %v, want [%v %v]", got, atRisk, broken)
	}
}

func TestProfileChipTargetsPermanentFaults(t *testing.T) {
	// Each profiling write re-encodes the word, so transient damage from
	// before the pass does not register: the profile isolates the faults
	// that will repeat at runtime.
	chip := dram.NewChip(testGeom(), ecc.NewCRC8ATM())
	a := dram.WordAddr{Bank: 0, Row: 3, Col: 1}
	chip.Write(a, 0xdead)
	chip.InjectFault(dram.NewWordFault(a, 1<<2|1<<7|1<<50, 0, true))
	p := ProfileChip(chip, []dram.WordAddr{a}, HARPOptions{Rounds: 4, Seed: 1})
	if w := p.Words[0]; w.AtRisk() || w.Direct != 0 {
		t.Fatalf("transient pre-pass damage registered in profile: %+v", w)
	}
}

func TestProfileChipRestoresRegisters(t *testing.T) {
	chip := dram.NewChip(testGeom(), ecc.NewHsiao())
	chip.SetCatchWord(0x1234)
	chip.SetXEDEnable(false)
	ProfileChip(chip, []dram.WordAddr{{}}, HARPOptions{Rounds: 1})
	if chip.CatchWord() != 0x1234 || chip.XEDEnabled() {
		t.Fatalf("registers not restored: catch %#x xed %v", chip.CatchWord(), chip.XEDEnabled())
	}
}

func TestProfileChipUncorrectableIsAtRisk(t *testing.T) {
	// Every uncorrectable word must also appear in the at-risk set.
	chip := dram.NewChip(testGeom(), ecc.NewHamming())
	a := dram.WordAddr{Bank: 1, Row: 1, Col: 1}
	chip.InjectFault(dram.NewWordFault(a, 1|1<<63, 0, false))
	p := ProfileChip(chip, []dram.WordAddr{a}, HARPOptions{Rounds: 3, Seed: 9})
	if !p.Words[0].Uncorrectable() || !p.Words[0].AtRisk() {
		t.Fatalf("double-bit word: %+v", p.Words[0])
	}
}
