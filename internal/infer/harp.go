package infer

import (
	"math/bits"

	"xedsim/internal/dram"
	"xedsim/internal/simrand"
)

// HARPOptions configures a ProfileChip pass.
type HARPOptions struct {
	// Rounds is the number of random test patterns written and read back
	// per word, on top of the four structured backgrounds. <= 0 means 8.
	Rounds int
	// Seed drives the random patterns.
	Seed uint64
}

// WordProfile is one word's profiling outcome.
type WordProfile struct {
	Addr dram.WordAddr
	// Direct accumulates post-correction error bits: data bits that read
	// back wrong through the conventional (XED-off) path, i.e. errors the
	// on-die code failed to correct — HARP's "direct errors". Any set bit
	// means the word is uncorrectable by the on-die code alone.
	Direct uint64
	// Activity counts reads on which the on-die engine corrected or
	// detected something, observed through the XED catch-word convention.
	// Activity without direct errors marks an at-risk word: the on-die
	// code is still coping, and one more fault makes it uncorrectable.
	Activity int
	// Reads is the number of read-back rounds performed.
	Reads int
}

// Uncorrectable reports whether post-correction errors were observed.
func (w *WordProfile) Uncorrectable() bool { return w.Direct != 0 }

// AtRisk reports whether the on-die engine showed any error activity,
// including words already uncorrectable.
func (w *WordProfile) AtRisk() bool { return w.Activity > 0 || w.Direct != 0 }

// ErrorBits returns the number of distinct post-correction error positions.
func (w *WordProfile) ErrorBits() int { return bits.OnesCount64(w.Direct) }

// Profile is the outcome of profiling a set of words.
type Profile struct {
	Words []WordProfile
}

// ProfileChip runs a HARP-style active profiling pass over addrs: each
// word is written with test patterns and read back twice per round, once
// through the conventional path (post-correction data; a diff against the
// written pattern is a direct, on-die-uncorrectable error) and once with
// XED enabled (a catch-word read means the engine corrected or detected —
// error activity the conventional path hides). Writes re-encode the word
// and clear transient damage, so the profile targets resident permanent
// faults — exactly the errors that repeat at runtime.
//
// The pass restores the chip's XED-enable register before returning but
// consumes the usual stats and write-clock side effects of its accesses.
func ProfileChip(chip *dram.Chip, addrs []dram.WordAddr, opt HARPOptions) *Profile {
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	rng := simrand.New(opt.Seed)
	patterns := defaultPatterns()
	for i := 0; i < rounds; i++ {
		patterns = append(patterns, rng.Uint64())
	}
	// Act as the memory controller: program a random catch-word (like
	// core.Controller does) and enable XED for the activity reads,
	// restoring both registers on the way out.
	savedCatch := chip.CatchWord()
	catch := rng.Uint64()
	chip.SetCatchWord(catch)
	defer chip.SetCatchWord(savedCatch)
	savedXED := chip.XEDEnabled()
	chip.SetXEDEnable(true)
	defer chip.SetXEDEnable(savedXED)

	p := &Profile{Words: make([]WordProfile, len(addrs))}
	for i, a := range addrs {
		w := &p.Words[i]
		w.Addr = a
		for _, pat := range patterns {
			if pat == catch {
				continue // a catch-word-valued pattern would be ambiguous
			}
			chip.Write(a, pat)
			got, _ := chip.ReadRaw(a) // conventional path: post-correction data
			w.Direct |= got ^ pat
			if r := chip.Read(a); r.Data == catch {
				w.Activity++ // XED path: the engine corrected or detected
			}
			w.Reads++
		}
	}
	return p
}

// PredictUncorrectable returns the addresses whose profile shows
// post-correction errors — the words HARP-style profiling predicts will
// produce uncorrectable failures at runtime.
func (p *Profile) PredictUncorrectable() []dram.WordAddr {
	var out []dram.WordAddr
	for i := range p.Words {
		if p.Words[i].Uncorrectable() {
			out = append(out, p.Words[i].Addr)
		}
	}
	return out
}

// PredictAtRisk returns the addresses with any on-die error activity,
// a superset of PredictUncorrectable.
func (p *Profile) PredictAtRisk() []dram.WordAddr {
	var out []dram.WordAddr
	for i := range p.Words {
		if p.Words[i].AtRisk() {
			out = append(out, p.Words[i].Addr)
		}
	}
	return out
}
