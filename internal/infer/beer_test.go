package infer

import (
	"strings"
	"testing"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 8, ColsPerRow: 4}
}

func TestRecoverHMatrixKnownCodes(t *testing.T) {
	// The recovered matrix must equal the true matrix's canonical form,
	// bit for bit. Hsiao and CRC8 are already canonical (identity check
	// columns); Hamming is not, so recovery must land on its
	// canonicalisation rather than the hand-rolled spelling.
	cases := []struct {
		name string
		code ecc.Code64
		m    ecc.HMatrix72
	}{
		{"hsiao", ecc.NewHsiao(), ecc.NewHsiao().Matrix()},
		{"crc8", ecc.NewCRC8ATM(), ecc.NewCRC8ATM().Matrix()},
		{"hamming", ecc.NewHamming(), ecc.NewHamming().Matrix()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := c.m.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			chip := dram.NewChip(testGeom(), c.code)
			got, ev, err := RecoverHMatrix(chip, BEEROptions{Rounds: 2, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("recovered\n %v\nwant\n %v", got, want)
			}
			if ev.Families != 6 || ev.ProbeCount != 6*247 {
				t.Fatalf("evidence: %d families, %d probes", ev.Families, ev.ProbeCount)
			}
			// 64 columns pinned per family.
			if len(ev.Probes) != 6*64 {
				t.Fatalf("%d pinning probes, want %d", len(ev.Probes), 6*64)
			}
		})
	}
}

func TestRecoverHMatrixRandomCodes(t *testing.T) {
	// The tentpole contract: a randomly drawn SECDED code is recovered
	// exactly. RandomSECDED draws in canonical form, so equality is
	// direct.
	for seed := uint64(1); seed <= 8; seed++ {
		code := ecc.RandomSECDED(simrand.New(seed))
		chip := dram.NewChip(testGeom(), code)
		got, _, err := RecoverHMatrix(chip, BEEROptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != code.Matrix() {
			t.Fatalf("seed %d (%s): recovered matrix differs\n got %v\nwant %v",
				seed, code.Name(), got, code.Matrix())
		}
	}
}

func TestRecoverCodeRoundTrip(t *testing.T) {
	// The recovered code must be functionally interchangeable with the
	// true one: same encodings, same decode outcomes.
	truth := ecc.RandomSECDED(simrand.New(99))
	chip := dram.NewChip(testGeom(), truth)
	code, _, err := RecoverCode(chip, BEEROptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(3)
	for trial := 0; trial < 5000; trial++ {
		v := rng.Uint64()
		if code.Encode(v) != truth.Encode(v) {
			t.Fatalf("recovered code encodes %#x differently", v)
		}
		bad := truth.Encode(v).FlipMask(rng.Uint64(), uint8(rng.Uint64()))
		gd, gs := code.Decode(bad)
		wd, ws := truth.Decode(bad)
		if gd != wd || gs != ws {
			t.Fatalf("recovered code decodes %+v as (%#x, %v), truth (%#x, %v)", bad, gd, gs, wd, ws)
		}
	}
}

func TestRecoverHMatrixRejectsDamagedChip(t *testing.T) {
	chip := dram.NewChip(testGeom(), ecc.NewCRC8ATM())
	chip.InjectFault(dram.NewBitFault(dram.WordAddr{}, 5, false))
	if _, _, err := RecoverHMatrix(chip, BEEROptions{}); err == nil || !strings.Contains(err.Error(), "resident faults") {
		t.Fatalf("err = %v, want resident-faults refusal", err)
	}
}

// brokenCorrector wraps a real code but flips an extra data bit whenever
// it corrects — a non-single-bit black box the recovery must refuse.
type brokenCorrector struct{ ecc.Code64 }

func (b brokenCorrector) Decode(cw ecc.Codeword72) (uint64, ecc.DecodeStatus) {
	data, st := b.Code64.Decode(cw)
	if st == ecc.StatusCorrected {
		data ^= 1 << 40
		if data == cw.Data { // ensure the diff stays multi-bit, not zero
			data ^= 1 << 41
		}
	}
	return data, st
}

func TestRecoverHMatrixRejectsNonSingleBitCorrector(t *testing.T) {
	chip := dram.NewChip(testGeom(), brokenCorrector{ecc.NewHsiao()})
	_, _, err := RecoverHMatrix(chip, BEEROptions{})
	if err == nil || !strings.Contains(err.Error(), "not single-bit") {
		t.Fatalf("err = %v, want non-single-bit refusal", err)
	}
}

// secOnly strips the double-error discrimination from a SECDED code by
// treating every syndrome through the lookup alone — structurally fine,
// but here wrapped to also miss one data column, which must be reported.
type columnlessCode struct{ inner *ecc.LinearCode64 }

func (c columnlessCode) Name() string                   { return "columnless" }
func (c columnlessCode) Encode(d uint64) ecc.Codeword72 { return c.inner.Encode(d) }
func (c columnlessCode) IsValid(cw ecc.Codeword72) bool { return c.inner.IsValid(cw) }
func (c columnlessCode) Decode(cw ecc.Codeword72) (uint64, ecc.DecodeStatus) {
	data, st := c.inner.Decode(cw)
	if st == ecc.StatusCorrected && data^cw.Data == 1<<17 {
		return cw.Data, ecc.StatusDetected // refuse to ever correct bit 17
	}
	return data, st
}

func TestRecoverHMatrixReportsMissingColumn(t *testing.T) {
	chip := dram.NewChip(testGeom(), columnlessCode{ecc.RandomSECDED(simrand.New(5))})
	_, _, err := RecoverHMatrix(chip, BEEROptions{})
	if err == nil || !strings.Contains(err.Error(), "data bit 17") {
		t.Fatalf("err = %v, want missing-column report naming bit 17", err)
	}
}

func TestRecoverHMatrixNoPatterns(t *testing.T) {
	chip := dram.NewChip(testGeom(), ecc.NewHsiao())
	if _, _, err := RecoverHMatrix(chip, BEEROptions{Patterns: []uint64{}}); err == nil {
		t.Fatal("empty pattern set accepted")
	}
}
