// Package infer reverse-engineers a DRAM chip's on-die ECC from the
// outside, treating the chip as a black box the way BEER (Patel et al.,
// arXiv:2009.07985) and HARP (Patel et al., arXiv:2109.12697) do — the
// opposite assumption from XED's pre-agreed catch-word, and the scenario
// family ROADMAP item 3 opens: what happens when XED-style cooperation
// meets an unknown, mismatched or adversarial on-die code.
//
// Two instruments are provided:
//
//   - RecoverHMatrix (BEER-style): craft check-bit-only error patterns
//     under several data-pattern families, observe which patterns make the
//     on-die corrector flip a *data* bit, and solve for the parity-check
//     matrix column by column. The recovered matrix is in canonical
//     systematic form — the only form identifiable from outside, since
//     post-correction data reveals which column a syndrome named but never
//     how the syndrome was spelled.
//
//   - ProfileChip (HARP-style): write/read test-pattern rounds over a set
//     of words and classify each as clean, at-risk (the on-die engine is
//     actively correcting) or uncorrectable (errors visible past the
//     on-die engine), predicting where rare-event failures will surface.
//
// Both use only what a memory controller can see on the bus: written
// patterns, read-back data, and (for profiling) the XED catch-word
// convention. Neither reads the chip's private decode status.
package infer

import (
	"fmt"
	"math/bits"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/simrand"
)

// BEEROptions configures a RecoverHMatrix pass.
type BEEROptions struct {
	// Addr is the probe word; the zero address is always valid.
	Addr dram.WordAddr
	// Patterns are the data-pattern families each probe sweep runs under.
	// Nil selects the BEER-style defaults: all-0, all-1, both checkerboards.
	Patterns []uint64
	// Rounds adds seeded random data patterns on top of Patterns,
	// hardening the cross-family consistency check against data-dependent
	// decoder behaviour. Negative is treated as zero.
	Rounds int
	// Seed drives the random patterns.
	Seed uint64
}

// defaultPatterns are the classic retention-test backgrounds.
func defaultPatterns() []uint64 {
	return []uint64{0, ^uint64(0), 0xAAAAAAAAAAAAAAAA, 0x5555555555555555}
}

// Probe records one observation that pinned a column: injecting CheckMask
// into the check bits under Pattern made the on-die corrector flip data
// bit BitFlipped.
type Probe struct {
	CheckMask  uint8
	Pattern    uint64
	BitFlipped int
}

// Evidence summarises a recovery pass for reports and verdict details.
type Evidence struct {
	// Probes holds one entry per (column, family) observation that
	// contributed to the recovered matrix.
	Probes []Probe
	// ProbeCount is the total number of error patterns injected.
	ProbeCount int
	// Families is the number of data-pattern families swept.
	Families int
}

// RecoverHMatrix reverse-engineers the chip's on-die parity-check matrix.
//
// The mechanism: for a systematic code, a check-bits-only error with
// support T has canonical syndrome exactly T (the canonical check columns
// are the identity). The black-box decoder corrects data bit m on such an
// error iff canonical data column m equals T. So sweeping every T of
// weight >= 2 and diffing read-back data against the written pattern reads
// the canonical matrix out one column per hit: a single-bit diff at data
// bit m pins column m to T; weight-1 supports are the check columns
// themselves and never move data. The sweep runs under every data-pattern
// family and demands identical hits from each — the decoder of a linear
// code sees only the error, never the data, so any disagreement means the
// device is not behaving like a linear code.
//
// The chip must be quiescent (no resident faults); probes are injected as
// transient word faults and scrubbed after each read. Only bus-visible
// data is consulted. The recovered matrix is the canonical form; compare
// against a known code via ecc.HMatrix72.Canonical.
func RecoverHMatrix(chip *dram.Chip, opt BEEROptions) (ecc.HMatrix72, *Evidence, error) {
	var h ecc.HMatrix72
	if n := len(chip.Faults()); n != 0 {
		return h, nil, fmt.Errorf("infer: chip has %d resident faults; recovery needs a quiescent device", n)
	}
	patterns := opt.Patterns
	if patterns == nil {
		patterns = defaultPatterns()
	}
	rng := simrand.New(opt.Seed)
	for i := 0; i < opt.Rounds; i++ {
		patterns = append(patterns[:len(patterns):len(patterns)], rng.Uint64())
	}
	if len(patterns) == 0 {
		return h, nil, fmt.Errorf("infer: no data-pattern families to probe under")
	}

	ev := &Evidence{Families: len(patterns)}
	// colFor[m]+1 is the support pinned to data column m by the first
	// family; later families must reproduce it exactly.
	var colFor [64]int
	for fi, pat := range patterns {
		chip.Write(opt.Addr, pat)
		if got, _ := chip.ReadRaw(opt.Addr); got != pat {
			return h, ev, fmt.Errorf("infer: probe word reads %#x after writing %#x; the word is damaged", got, pat)
		}
		var seen [64]int // support hitting data bit m in this family
		for t := 1; t < 256; t++ {
			T := uint8(t)
			if bits.OnesCount8(T) < 2 {
				continue // weight-1 supports are the identity check columns
			}
			chip.InjectFault(dram.NewWordFault(opt.Addr, 0, T, true))
			got, _ := chip.ReadRaw(opt.Addr)
			chip.ClearTransientFaults()
			ev.ProbeCount++
			diff := got ^ pat
			if diff == 0 {
				continue // detected (or check-bit corrected): T names no data column
			}
			if diff&(diff-1) != 0 {
				return h, ev, fmt.Errorf("infer: support %#02x under pattern %#x moved %d data bits; the corrector is not single-bit", T, pat, bits.OnesCount64(diff))
			}
			m := bits.TrailingZeros64(diff)
			if seen[m] != 0 {
				return h, ev, fmt.Errorf("infer: data bit %d corrected by supports %#02x and %#02x; column syndromes alias", m, uint8(seen[m]-1), T)
			}
			seen[m] = int(T) + 1
			ev.Probes = append(ev.Probes, Probe{CheckMask: T, Pattern: pat, BitFlipped: m})
		}
		for m := 0; m < 64; m++ {
			switch {
			case fi == 0:
				colFor[m] = seen[m]
			case colFor[m] != seen[m]:
				return h, ev, fmt.Errorf("infer: data bit %d pinned to support %#02x under pattern %#x but %#02x under %#x; behaviour is data-dependent, not a linear code",
					m, uint8(colFor[m]-1), patterns[0], uint8(seen[m]-1), pat)
			}
		}
	}
	for m := 0; m < 64; m++ {
		if colFor[m] == 0 {
			return h, ev, fmt.Errorf("infer: no check-bit support ever corrected data bit %d; the code is not a systematic single-error corrector over all 64 data bits", m)
		}
		h[m] = uint8(colFor[m] - 1)
	}
	for a := 0; a < 8; a++ {
		h[64+a] = 1 << uint(a)
	}
	return h, ev, nil
}

// RecoverCode runs RecoverHMatrix and wraps the result in a working
// ecc.LinearCode64 equivalent to the chip's on-die code (same codeword
// set; SECDED decode policy when the recovered matrix supports one).
func RecoverCode(chip *dram.Chip, opt BEEROptions) (*ecc.LinearCode64, *Evidence, error) {
	h, ev, err := RecoverHMatrix(chip, opt)
	if err != nil {
		return nil, ev, err
	}
	code, err := ecc.NewLinearCode64("(72,64) recovered", h)
	if err != nil {
		return nil, ev, fmt.Errorf("infer: recovered matrix is not a valid code: %v", err)
	}
	return code, ev, nil
}
