module xedsim

go 1.22
