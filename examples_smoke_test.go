package xedsim_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs each examples/ program end to end:
// exit 0 and a marker line that only prints after the example's full
// scenario has completed. The examples are the repo's executable
// documentation — they must not rot as the libraries underneath move.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full scenarios; skipped in -short")
	}
	cases := []struct {
		dir    string
		marker string
	}{
		// Each marker is the example's closing claim, printed after every
		// assertion in the program has already passed.
		{"quickstart", "Chipkill-level protection from a commodity 9-chip DIMM"},
		{"reliability", "with scaling faults at 1e-4"},
		{"diagnosis", "final stats:"},
		{"performance", "the Figure 11 mechanism"},
		{"doublechipkill", "ALERT_n (extended):"},
		{"inference", "the BEER/HARP result"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), tc.dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+tc.dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("no output")
			}
			if !strings.Contains(string(out), tc.marker) {
				t.Fatalf("output does not contain marker %q:\n%s", tc.marker, out)
			}
		})
	}
}
