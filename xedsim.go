// Package xedsim is a library-level reproduction of "XED: Exposing On-Die
// Error Detection Information for Strong Memory Reliability" (Nair,
// Sridharan, Qureshi — ISCA 2016).
//
// It bundles four subsystems behind one facade:
//
//   - a functional DRAM + XED memory-controller model (internal/dram,
//     internal/core): chips with On-Die ECC, catch-words, RAID-3 parity
//     reconstruction, serial-mode correction and fault diagnosis;
//   - the ECC substrate (internal/ecc): Hamming and CRC8-ATM (72,64)
//     SECDED codes, XOR parity, and Reed-Solomon symbol codes with
//     erasure decoding for the Chipkill family;
//   - a FaultSim-style Monte-Carlo reliability simulator
//     (internal/faultsim) reproducing Figures 1, 7, 8, 9 and 10;
//   - a USIMM-style cycle-level performance and power simulator
//     (internal/memsim) reproducing Figures 11, 12, 13 and 14.
//
// The facade exposes the high-level entry points a downstream user needs:
// build an XED-protected memory system and read/write through it, run a
// reliability campaign, or run a performance comparison. Anything more
// specialised is available from the internal packages within this module;
// see the examples/ directory for runnable walkthroughs of both levels.
package xedsim

import (
	"context"

	"xedsim/internal/core"
	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/faultsim"
	"xedsim/internal/memsim"
)

// OnDieCode selects the per-chip On-Die ECC code.
type OnDieCode int

const (
	// CRC8ATM is the paper's recommended on-die code (§V-E): SECDED
	// plus 100% detection of bursts up to 8 bits.
	CRC8ATM OnDieCode = iota
	// Hamming is the conventional extended Hamming SECDED baseline.
	Hamming
)

func (c OnDieCode) build() func() ecc.Code64 {
	switch c {
	case Hamming:
		return func() ecc.Code64 { return ecc.NewHamming() }
	default:
		return func() ecc.Code64 { return ecc.NewCRC8ATM() }
	}
}

// System is an XED-protected 9-chip memory rank: the headline
// configuration of the paper. It corrects any single-chip failure, all
// scaling faults, and diagnoses on-die detection misses.
type System struct {
	ctrl *core.Controller
}

// Config parameterises a System.
type Config struct {
	// Geometry of each chip; zero value selects the paper's 2Gb part.
	Geometry dram.Geometry
	// OnDie selects the on-die code (default CRC8ATM).
	OnDie OnDieCode
	// ScalingFaultRate injects birthtime weak cells at this per-bit
	// rate (§VII uses 1e-4). Zero disables.
	ScalingFaultRate float64
	// Seed drives catch-word generation and scaling-fault placement.
	Seed uint64
}

// NewSystem builds an XED system. The zero Config is valid; an invalid
// Geometry is an error.
func NewSystem(cfg Config) (*System, error) {
	geom := cfg.Geometry
	if geom == (dram.Geometry{}) {
		geom = dram.DefaultGeometry()
	}
	rank, err := dram.NewRank(9, geom, cfg.OnDie.build())
	if err != nil {
		return nil, err
	}
	if cfg.ScalingFaultRate > 0 {
		for i := 0; i < rank.Chips(); i++ {
			rank.Chip(i).SetScaling(dram.ScalingProfile{
				Rate: cfg.ScalingFaultRate,
				Seed: cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15,
			})
		}
	}
	return &System{ctrl: core.NewController(rank, cfg.Seed)}, nil
}

// Write stores a 64-byte cache line at the address.
func (s *System) Write(addr dram.WordAddr, line core.Line) { s.ctrl.WriteLine(addr, line) }

// Read fetches a cache line through the full XED correction hierarchy.
func (s *System) Read(addr dram.WordAddr) core.ReadResult { return s.ctrl.ReadLine(addr) }

// InjectFault adds a runtime fault to chip (0..8; 8 is the parity chip).
func (s *System) InjectFault(chip int, f dram.Fault) { s.ctrl.Rank().InjectChipFailure(chip, f) }

// Controller exposes the underlying XED controller for detailed
// inspection (stats, FCT, catch-words).
func (s *System) Controller() *core.Controller { return s.ctrl }

// Stats returns the controller's activity counters.
func (s *System) Stats() core.Stats { return s.ctrl.Stats() }

// ReliabilityConfig re-exports the Monte-Carlo simulator configuration.
type ReliabilityConfig = faultsim.Config

// ReliabilityReport re-exports the campaign report.
type ReliabilityReport = faultsim.Report

// DefaultReliabilityConfig is the paper's §III evaluation system.
func DefaultReliabilityConfig() ReliabilityConfig { return faultsim.DefaultConfig() }

// CampaignOptions re-exports the resilient campaign engine's options
// (cancellation, checkpoint/resume, panic isolation).
type CampaignOptions = faultsim.CampaignOptions

// RunReliability executes a Monte-Carlo reliability campaign over the
// paper's six protection organisations (Figures 1, 7, 8, 9, 10).
func RunReliability(cfg ReliabilityConfig, trials int, seed uint64) (*ReliabilityReport, error) {
	return faultsim.Run(cfg, faultsim.AllSchemes(), trials, seed, 0)
}

// RunReliabilityCampaign is RunReliability through the resilient engine:
// ctx cancellation drains workers and returns the partial report, and opts
// selects checkpointing, resume, panic error budget and scheduling shape.
func RunReliabilityCampaign(ctx context.Context, cfg ReliabilityConfig, opts CampaignOptions) (*ReliabilityReport, error) {
	return faultsim.RunCampaign(ctx, cfg, faultsim.AllSchemes(), opts)
}

// PerformanceComparison re-exports the memsim experiment result.
type PerformanceComparison = memsim.Comparison

// RunPerformance executes the cycle-level simulator over the paper's
// workload list for the given schemes (Figures 11-14). instrPerCore
// trades fidelity for runtime; 300k is a sensible floor, the paper's
// slices are 1B. ctx cancellation abandons the remaining runs and returns
// ctx's error.
func RunPerformance(ctx context.Context, schemes []memsim.SchemeConfig, instrPerCore int64, seed uint64) (*PerformanceComparison, error) {
	return memsim.RunComparison(ctx, memsim.PaperWorkloads(), schemes, instrPerCore, seed, 0)
}

// Figure11Schemes returns the scheme set of Figures 11 and 12, baseline
// first.
func Figure11Schemes() []memsim.SchemeConfig {
	return []memsim.SchemeConfig{
		memsim.SECDEDScheme(),
		memsim.XEDScheme(),
		memsim.ChipkillScheme(),
		memsim.XEDChipkillScheme(),
		memsim.DoubleChipkillScheme(),
	}
}

// Fleet is the multi-channel functional memory system: the paper's
// 4-channel dual-rank configuration with one XED controller per rank and a
// physical address map over the whole capacity.
type Fleet = core.MemorySystem

// FleetConfig re-exports the fleet configuration.
type FleetConfig = core.MemorySystemConfig

// NewFleet builds an address-mapped, XED-protected memory fleet. A zero
// Geometry selects the paper's 2Gb part; Channels/RanksPerChannel default
// to the Table V system (4x2). Invalid shapes are an error.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 4
	}
	if cfg.RanksPerChannel == 0 {
		cfg.RanksPerChannel = 2
	}
	if cfg.Geometry == (dram.Geometry{}) {
		cfg.Geometry = dram.DefaultGeometry()
	}
	return core.NewMemorySystem(cfg)
}
