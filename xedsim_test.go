package xedsim

import (
	"context"
	"testing"

	"xedsim/internal/core"
	"xedsim/internal/dram"
)

func smallGeom() dram.Geometry { return dram.Geometry{Banks: 2, RowsPerBank: 16, ColsPerRow: 128} }

func TestFacadeRoundTrip(t *testing.T) {
	sys, err := NewSystem(Config{Geometry: smallGeom(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr := dram.WordAddr{Bank: 0, Row: 3, Col: 5}
	line := core.Line{1, 2, 3, 4, 5, 6, 7, 8}
	sys.Write(addr, line)
	res := sys.Read(addr)
	if res.Outcome != core.OutcomeClean || res.Data != line {
		t.Fatalf("round trip failed: %+v", res)
	}
}

func TestFacadeSurvivesChipFailure(t *testing.T) {
	sys, err := NewSystem(Config{Geometry: smallGeom(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := dram.WordAddr{Bank: 1, Row: 1, Col: 1}
	line := core.Line{9, 8, 7, 6, 5, 4, 3, 2}
	sys.Write(addr, line)
	sys.InjectFault(4, dram.NewChipFault(false, 11))
	res := sys.Read(addr)
	if res.Data != line {
		t.Fatalf("chip failure not corrected: %+v", res)
	}
	if res.Outcome != core.OutcomeCorrectedErasure {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if sys.Stats().ErasureCorrections == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestFacadeWithScalingFaults(t *testing.T) {
	// An exaggerated scaling rate so the small geometry contains weak
	// cells; XED must still return correct data for every line.
	sys, err := NewSystem(Config{Geometry: smallGeom(), Seed: 3, ScalingFaultRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 16; row++ {
		addr := dram.WordAddr{Bank: 0, Row: row, Col: row * 7 % 128}
		line := core.Line{uint64(row), 1, 2, 3, 4, 5, 6, 7}
		sys.Write(addr, line)
		if res := sys.Read(addr); res.Data != line {
			t.Fatalf("row %d: scaling fault corrupted data (outcome %v)", row, res.Outcome)
		}
	}
}

func TestFacadeHammingOption(t *testing.T) {
	sys, err := NewSystem(Config{Geometry: smallGeom(), OnDie: Hamming, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	addr := dram.WordAddr{Bank: 0, Row: 0, Col: 0}
	line := core.Line{0xaa, 0xbb, 0, 0, 0, 0, 0, 0}
	sys.Write(addr, line)
	sys.InjectFault(0, dram.NewBitFault(addr, 7, false))
	res := sys.Read(addr)
	if res.Data != line {
		t.Fatalf("Hamming on-die system failed: %+v", res)
	}
}

func TestFacadeReliabilityCampaign(t *testing.T) {
	cfg := DefaultReliabilityConfig()
	rep, err := RunReliability(cfg, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("expected 6 schemes, got %d", len(rep.Results))
	}
	xed := rep.ResultFor("XED")
	secded := rep.ResultFor("ECC-DIMM (SECDED)")
	if xed == nil || secded == nil {
		t.Fatal("missing scheme results")
	}
	if xed.Probability() >= secded.Probability() {
		t.Fatalf("XED (%v) should beat SECDED (%v)", xed.Probability(), secded.Probability())
	}
}

func TestFacadePerformanceComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level sweep")
	}
	cmp, err := RunPerformance(context.Background(), Figure11Schemes()[:3], 20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Workloads) < 26 {
		t.Fatalf("workload list truncated: %d", len(cmp.Workloads))
	}
	if g := cmp.GmeanTime(1); g != 1 {
		t.Fatalf("XED gmean %v, want exactly baseline", g)
	}
	if g := cmp.GmeanTime(2); g <= 1 {
		t.Fatalf("Chipkill gmean %v, want > 1", g)
	}
}

func TestFacadeFleet(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{Geometry: smallGeom(), Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	line := core.Line{5, 4, 3, 2, 1, 0, 9, 8}
	fleet.Write(0x4040, line)
	fleet.InjectChipFailure(0, 0, 7, dram.NewChipFault(false, 5))
	res := fleet.Read(0x4040)
	if res.Data != line {
		t.Fatalf("fleet read wrong: %+v", res)
	}
	if fleet.Capacity() == 0 {
		t.Fatal("zero capacity")
	}
}
