package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
)

// progressPrinter repaints a one-line live status after each merged chunk,
// fed entirely from the campaign's metrics registry: trial throughput plus
// per-scheme running failure tallies with 95% Wilson intervals. The engine
// already serialises OnChunk, so no locking is needed here.
type progressPrinter struct {
	reg     *obs.Registry
	out     io.Writer
	label   string
	schemes []string
	start   time.Time
	trials0 uint64 // trials_done at construction (resume credit)
	last    time.Time
	width   int
}

func newProgressPrinter(reg *obs.Registry, out io.Writer, label string, schemes []faultsim.Scheme) *progressPrinter {
	p := &progressPrinter{
		reg:     reg,
		out:     out,
		label:   label,
		start:   time.Now(),
		trials0: reg.Snapshot().Counters["campaign.trials_done"],
	}
	for _, s := range schemes {
		p.schemes = append(p.schemes, s.Name())
	}
	return p
}

// onChunk is wired as CampaignOptions.OnChunk.
func (p *progressPrinter) onChunk(done, total int) {
	now := time.Now()
	if done < total && now.Sub(p.last) < 100*time.Millisecond {
		return // repaint at most ~10 Hz, but always paint the final state
	}
	p.last = now

	snap := p.reg.Snapshot()
	trials := snap.Counters["campaign.trials_done"]
	rate := float64(trials-p.trials0) / time.Since(p.start).Seconds()

	var b strings.Builder
	fmt.Fprintf(&b, "%s %3d%% %s trials %s/s", p.label, done*100/max(total, 1), si(float64(trials)), si(rate))
	for _, name := range p.schemes {
		k := snap.Counters["campaign.scheme."+name+".failures"]
		lo, hi := faultsim.WilsonInterval(k, trials)
		fmt.Fprintf(&b, " | %s %d [%.2g,%.2g]", name, k, lo, hi)
	}
	if errs := snap.Counters["campaign.trial_errors"]; errs > 0 {
		fmt.Fprintf(&b, " | voided %d", errs)
	}

	// Overwrite in place, blanking any leftover tail of a longer line.
	line := b.String()
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.width = len(line)
	fmt.Fprintf(p.out, "\r%s%s", line, pad)
}

// finish terminates the repaint line so the results table starts clean.
func (p *progressPrinter) finish() {
	if p.width > 0 {
		fmt.Fprintln(p.out)
	}
}

// si formats a count with a thousands suffix for the narrow status line.
func si(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
