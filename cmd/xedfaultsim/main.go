// Command xedfaultsim regenerates the XED paper's reliability figures with
// the FaultSim-style Monte-Carlo simulator:
//
//	xedfaultsim -experiment fig1   # NonECC vs ECC-DIMM vs Chipkill (On-Die ECC present)
//	xedfaultsim -experiment fig7   # ECC-DIMM vs XED vs Chipkill
//	xedfaultsim -experiment fig8   # same, with scaling faults at 1e-4
//	xedfaultsim -experiment fig9   # Single- vs Double-Chipkill vs XED+Chipkill
//	xedfaultsim -experiment fig10  # same, with scaling faults
//	xedfaultsim -experiment custom -schemes "XED,Chipkill"
//	xedfaultsim -experiment all
//
// Each run prints the probability-of-system-failure curve per year (the
// figures' series) and the headline reliability ratios the paper quotes.
// The paper simulates 1e9 systems; -systems trades precision for time.
//
// Long campaigns are resilient: SIGINT/SIGTERM drains the workers, prints
// the partial results with their trial counts and confidence intervals,
// and exits nonzero. With -checkpoint the campaign also snapshots its
// accumulators atomically every -checkpoint-every (and on interrupt), and
// -resume continues from the snapshot — the resumed run is bit-identical
// to an uninterrupted one with the same seed. A snapshot records a hash of
// the full campaign configuration and refuses to resume a different one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"xedsim/internal/faultsim"
	"xedsim/internal/profiling"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedfaultsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	experiment := flag.String("experiment", "all", "fig1|fig7|fig8|fig9|fig10|custom|all")
	systems := flag.Int("systems", 2_000_000, "Monte-Carlo trials (systems simulated)")
	seed := flag.Uint64("seed", 42, "random seed")
	scrub := flag.Float64("scrub-hours", 0, "override patrol-scrub interval (hours)")
	overlap := flag.Bool("address-overlap", false, "require address-range intersection for compound failures (precise FaultSim criterion)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	schemeList := flag.String("schemes", "", "comma-separated scheme names for -experiment custom")
	ckptPath := flag.String("checkpoint", "", "snapshot campaign progress to this file (single experiment only)")
	ckptEvery := flag.Duration("checkpoint-every", faultsim.DefaultCheckpointInterval, "interval between periodic snapshots")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if *systems <= 0 {
		usageErr("-systems must be positive, got %d", *systems)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0, got %d", *workers)
	}
	if *ckptEvery <= 0 {
		usageErr("-checkpoint-every must be positive, got %v", *ckptEvery)
	}
	switch *experiment {
	case "all", "fig1", "fig7", "fig8", "fig9", "fig10", "custom":
	default:
		usageErr("unknown experiment %q", *experiment)
	}
	var customSchemes []faultsim.Scheme
	if *experiment == "custom" {
		if *schemeList == "" {
			usageErr("-experiment custom needs -schemes (valid: %v)", faultsim.SchemeNames())
		}
		var err error
		customSchemes, err = faultsim.SchemesByName(splitTrim(*schemeList)...)
		if err != nil {
			usageErr("%v", err)
		}
	} else if *schemeList != "" {
		usageErr("-schemes only applies to -experiment custom")
	}
	if *ckptPath != "" && *experiment == "all" {
		usageErr("-checkpoint covers one campaign; pick a single -experiment")
	}
	if *resume && *ckptPath == "" {
		usageErr("-resume needs -checkpoint")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
	opts := runOptions{
		systems: *systems,
		seed:    *seed,
		scrub:   *scrub,
		overlap: *overlap,
		workers: *workers,
		schemes: customSchemes,
		campaign: faultsim.CampaignOptions{
			CheckpointPath:     *ckptPath,
			CheckpointInterval: *ckptEvery,
			Resume:             *resume,
		},
	}
	var runErr error
	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig7", "fig8", "fig9", "fig10"} {
			if runErr = runExperiment(ctx, name, opts); runErr != nil {
				break
			}
			fmt.Println()
		}
	} else {
		runErr = runExperiment(ctx, *experiment, opts)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", runErr)
		os.Exit(1)
	}
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

type runOptions struct {
	systems  int
	seed     uint64
	scrub    float64
	overlap  bool
	workers  int
	schemes  []faultsim.Scheme // custom experiment only
	campaign faultsim.CampaignOptions
}

func runExperiment(ctx context.Context, name string, o runOptions) error {
	cfg := faultsim.DefaultConfig()
	if o.scrub > 0 {
		cfg.ScrubIntervalHours = o.scrub
	}
	cfg.RequireAddressOverlap = o.overlap

	var schemes []faultsim.Scheme
	var title string
	var ratios [][2]string
	switch name {
	case "fig1":
		title = "Figure 1: reliability solutions in presence of On-Die ECC"
		schemes = []faultsim.Scheme{faultsim.NewNonECC(), faultsim.NewSECDED(), faultsim.NewChipkill()}
		ratios = [][2]string{{"Chipkill", "ECC-DIMM (SECDED)"}}
	case "fig7":
		title = "Figure 7: ECC-DIMM vs XED vs Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
			{"XED", "Chipkill"},
		}
	case "fig8":
		title = "Figure 8: runtime faults in the presence of scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
		}
	case "fig9":
		title = "Figure 9: Single-Chipkill vs Double-Chipkill vs XED+Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	case "fig10":
		title = "Figure 10: Chipkill family with scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	case "custom":
		title = "Custom campaign"
		schemes = o.schemes
	}

	copts := o.campaign
	copts.Trials = o.systems
	copts.Seed = o.seed
	copts.Workers = o.workers

	rep, err := faultsim.RunCampaign(ctx, cfg, schemes, copts)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		return err
	}
	fmt.Println(title)
	fmt.Printf("  (%d of %d systems, %d chips each, %.0f-year lifetime, scrub %.0fh)\n",
		rep.Trials, rep.Requested, cfg.TotalChips(), cfg.LifetimeHours/faultsim.HoursPerYear, cfg.ScrubIntervalHours)
	fmt.Printf("%-22s", "scheme \\ year")
	for y := 1; y <= rep.Years; y++ {
		fmt.Printf(" %9d", y)
	}
	fmt.Println()
	for i := range rep.Results {
		r := &rep.Results[i]
		fmt.Printf("%-22s", r.SchemeName)
		for y := 0; y < rep.Years; y++ {
			fmt.Printf(" %9.3g", r.ProbabilityByYear(y))
		}
		fmt.Printf("   (±%.1g; DUE %.2g, SDC %.2g)\n", r.StdErr(), r.DUEProbability(), r.SDCProbability())
	}
	for _, pair := range ratios {
		ratio, lo, hi := rep.ImprovementCI(pair[0], pair[1])
		fmt.Printf("  %s is %.1fx more reliable than %s (95%% CI %.1f-%.1fx)\n",
			pair[0], ratio, pair[1], lo, hi)
	}
	for i := range rep.TrialErrors {
		te := &rep.TrialErrors[i]
		fmt.Fprintf(os.Stderr, "  voided trial %d (chunk %d, rng %v): %s\n",
			te.Trial, te.Chunk, te.RNGState, te.PanicValue)
	}
	if interrupted {
		msg := "interrupted; partial results above"
		if copts.CheckpointPath != "" {
			msg += ", progress saved to " + copts.CheckpointPath
		}
		return errors.New(msg)
	}
	return nil
}
