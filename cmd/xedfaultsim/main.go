// Command xedfaultsim regenerates the XED paper's reliability figures with
// the FaultSim-style Monte-Carlo simulator:
//
//	xedfaultsim -experiment fig1   # NonECC vs ECC-DIMM vs Chipkill (On-Die ECC present)
//	xedfaultsim -experiment fig7   # ECC-DIMM vs XED vs Chipkill
//	xedfaultsim -experiment fig8   # same, with scaling faults at 1e-4
//	xedfaultsim -experiment fig9   # Single- vs Double-Chipkill vs XED+Chipkill
//	xedfaultsim -experiment fig10  # same, with scaling faults
//	xedfaultsim -experiment custom -schemes "XED,Chipkill"
//	xedfaultsim -experiment fig7 -ondie-code random:7   # measure the silent fraction
//	xedfaultsim -experiment all
//
// Each run prints the probability-of-system-failure curve per year (the
// figures' series) and the headline reliability ratios the paper quotes.
// The paper simulates 1e9 systems; -systems trades precision for time.
//
// Long campaigns are resilient: SIGINT/SIGTERM drains the workers, prints
// the partial results with their trial counts and confidence intervals,
// and exits nonzero. With -checkpoint the campaign also snapshots its
// accumulators atomically every -checkpoint-every (and on interrupt), and
// -resume continues from the snapshot — the resumed run is bit-identical
// to an uninterrupted one with the same seed. A snapshot records a hash of
// the full campaign configuration and refuses to resume a different one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
	"xedsim/internal/profiling"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedfaultsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	systems    int
	workers    int
	scrub      float64
	ckptEvery  time.Duration
	experiment string
	schemeList string
	ckptPath   string
	resume     bool
	engine     string
	gen        string
	ondieCode  string
}

// validateArgs returns the message usageErr should print, or nil. Range
// errors are caught here, at flag-validation time, rather than surfacing
// later as Config invariant violations (negative scrub intervals) or as
// silently disabled periodic snapshots (non-positive -checkpoint-every).
func validateArgs(a cliArgs) error {
	if a.systems <= 0 {
		return fmt.Errorf("-systems must be positive, got %d", a.systems)
	}
	if a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", a.workers)
	}
	if a.scrub < 0 {
		return fmt.Errorf("-scrub-hours must be >= 0, got %v", a.scrub)
	}
	if a.ckptEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %v", a.ckptEvery)
	}
	switch a.experiment {
	case "all", "fig1", "fig7", "fig8", "fig9", "fig10", "custom":
	default:
		return fmt.Errorf("unknown experiment %q", a.experiment)
	}
	if a.experiment == "custom" && a.schemeList == "" {
		return fmt.Errorf("-experiment custom needs -schemes (valid: %v)", faultsim.SchemeNames())
	}
	if a.experiment != "custom" && a.schemeList != "" {
		return errors.New("-schemes only applies to -experiment custom")
	}
	if a.ckptPath != "" && a.experiment == "all" {
		return errors.New("-checkpoint covers one campaign; pick a single -experiment")
	}
	if a.resume && a.ckptPath == "" {
		return errors.New("-resume needs -checkpoint")
	}
	if _, err := faultsim.ParseEngine(a.engine); err != nil {
		return err
	}
	if _, err := faultsim.ParseGenerator(a.gen); err != nil {
		return err
	}
	if _, err := faultsim.ParseOnDieCode(a.ondieCode); err != nil {
		return err
	}
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "fig1|fig7|fig8|fig9|fig10|custom|all")
	systems := flag.Int("systems", 2_000_000, "Monte-Carlo trials (systems simulated)")
	seed := flag.Uint64("seed", 42, "random seed")
	scrub := flag.Float64("scrub-hours", 0, "override patrol-scrub interval (hours)")
	overlap := flag.Bool("address-overlap", false, "require address-range intersection for compound failures (precise FaultSim criterion)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	schemeList := flag.String("schemes", "", "comma-separated scheme names for -experiment custom")
	ckptPath := flag.String("checkpoint", "", "snapshot campaign progress to this file (single experiment only)")
	ckptEvery := flag.Duration("checkpoint-every", faultsim.DefaultCheckpointInterval, "interval between periodic snapshots")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	engine := flag.String("engine", "", "campaign evaluation engine: lanes|indexed|reference (default indexed); results are bit-identical")
	gen := flag.String("gen", "", "trial-generation mode: scalar|batch (default scalar); batch draws a different exactly-distributed stream")
	ondieCode := flag.String("ondie-code", "", "measure the silent-word fraction from this on-die code (crc8|hamming|hsiao|random:<seed>) instead of assuming the paper's 0.008")
	progress := flag.Bool("progress", false, "repaint a one-line live status (trials/s, per-scheme tallies) on stderr")
	metricsJSON := flag.String("metrics-json", "", "write the final metrics snapshot to this file as JSON")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof over HTTP on this address (e.g. localhost:6060)")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if err := validateArgs(cliArgs{
		systems:    *systems,
		workers:    *workers,
		scrub:      *scrub,
		ckptEvery:  *ckptEvery,
		experiment: *experiment,
		schemeList: *schemeList,
		ckptPath:   *ckptPath,
		resume:     *resume,
		engine:     *engine,
		gen:        *gen,
		ondieCode:  *ondieCode,
	}); err != nil {
		usageErr("%v", err)
	}
	var customSchemes []faultsim.Scheme
	if *experiment == "custom" {
		var err error
		customSchemes, err = faultsim.SchemesByName(splitTrim(*schemeList)...)
		if err != nil {
			usageErr("%v", err)
		}
	}

	// One registry spans all experiments of the run, so -experiment all
	// accumulates into the same counters the debug endpoint serves.
	var reg *obs.Registry
	if *progress || *metricsJSON != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedfaultsim: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xedfaultsim: serving metrics and pprof on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: obs.NewMux(reg)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
	opts := runOptions{
		systems:   *systems,
		seed:      *seed,
		scrub:     *scrub,
		overlap:   *overlap,
		workers:   *workers,
		ondieCode: *ondieCode,
		schemes:   customSchemes,
		metrics:   reg,
		progress:  *progress,
		campaign: faultsim.CampaignOptions{
			CheckpointPath:     *ckptPath,
			CheckpointInterval: *ckptEvery,
			Resume:             *resume,
			Metrics:            reg,
			Engine:             faultsim.Engine(*engine),
			Gen:                faultsim.Generator(*gen),
		},
	}
	var runErr error
	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig7", "fig8", "fig9", "fig10"} {
			if runErr = runExperiment(ctx, name, opts); runErr != nil {
				break
			}
			fmt.Println()
		}
	} else {
		runErr = runExperiment(ctx, *experiment, opts)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON, reg); err != nil {
			fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", runErr)
		os.Exit(1)
	}
}

// writeMetricsJSON dumps the final snapshot; it runs even after an
// interrupted campaign so partial runs still leave their accounting behind.
func writeMetricsJSON(path string, reg *obs.Registry) error {
	b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

type runOptions struct {
	systems   int
	seed      uint64
	scrub     float64
	overlap   bool
	workers   int
	ondieCode string            // non-empty: measure SilentWordFraction from this code
	schemes   []faultsim.Scheme // custom experiment only
	metrics   *obs.Registry     // nil unless -progress/-metrics-json/-debug-addr
	progress  bool
	campaign  faultsim.CampaignOptions
}

func runExperiment(ctx context.Context, name string, o runOptions) error {
	cfg := faultsim.DefaultConfig()
	if o.scrub > 0 {
		cfg.ScrubIntervalHours = o.scrub
	}
	cfg.RequireAddressOverlap = o.overlap
	if o.ondieCode != "" {
		// Replace the paper's assumed 0.8% escape rate with one measured
		// against the selected codec. The measurement is seeded, so
		// checkpointed campaigns hash and resume consistently.
		code, err := faultsim.ParseOnDieCode(o.ondieCode)
		if err != nil {
			return err
		}
		cfg.SilentWordFraction = faultsim.SilentWordFractionFor(code, 200_000, o.seed)
		fmt.Printf("on-die code %s: measured silent word fraction %.2g (config default %.2g)\n",
			code.Name(), cfg.SilentWordFraction, faultsim.DefaultConfig().SilentWordFraction)
	}

	var schemes []faultsim.Scheme
	var title string
	var ratios [][2]string
	switch name {
	case "fig1":
		title = "Figure 1: reliability solutions in presence of On-Die ECC"
		schemes = []faultsim.Scheme{faultsim.NewNonECC(), faultsim.NewSECDED(), faultsim.NewChipkill()}
		ratios = [][2]string{{"Chipkill", "ECC-DIMM (SECDED)"}}
	case "fig7":
		title = "Figure 7: ECC-DIMM vs XED vs Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
			{"XED", "Chipkill"},
		}
	case "fig8":
		title = "Figure 8: runtime faults in the presence of scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
		}
	case "fig9":
		title = "Figure 9: Single-Chipkill vs Double-Chipkill vs XED+Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	case "fig10":
		title = "Figure 10: Chipkill family with scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	case "custom":
		title = "Custom campaign"
		schemes = o.schemes
	}

	copts := o.campaign
	copts.Trials = o.systems
	copts.Seed = o.seed
	copts.Workers = o.workers
	var pp *progressPrinter
	if o.progress && o.metrics != nil {
		pp = newProgressPrinter(o.metrics, os.Stderr, name, schemes)
		copts.OnChunk = pp.onChunk
	}

	rep, err := faultsim.RunCampaign(ctx, cfg, schemes, copts)
	if pp != nil {
		pp.finish() // terminate the repaint line before the results table
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		return err
	}
	fmt.Println(title)
	fmt.Printf("  (%d of %d systems, %d chips each, %.0f-year lifetime, scrub %.0fh)\n",
		rep.Trials, rep.Requested, cfg.TotalChips(), cfg.LifetimeHours/faultsim.HoursPerYear, cfg.ScrubIntervalHours)
	fmt.Printf("%-22s", "scheme \\ year")
	for y := 1; y <= rep.Years; y++ {
		fmt.Printf(" %9d", y)
	}
	fmt.Println()
	for i := range rep.Results {
		r := &rep.Results[i]
		fmt.Printf("%-22s", r.SchemeName)
		for y := 0; y < rep.Years; y++ {
			fmt.Printf(" %9.3g", r.ProbabilityByYear(y))
		}
		fmt.Printf("   (±%.1g; DUE %.2g, SDC %.2g)\n", r.StdErr(), r.DUEProbability(), r.SDCProbability())
	}
	for _, pair := range ratios {
		ratio, lo, hi := rep.ImprovementCI(pair[0], pair[1])
		fmt.Printf("  %s is %.1fx more reliable than %s (95%% CI %.1f-%.1fx)\n",
			pair[0], ratio, pair[1], lo, hi)
	}
	for i := range rep.TrialErrors {
		te := &rep.TrialErrors[i]
		fmt.Fprintf(os.Stderr, "  voided trial %d (chunk %d, rng %v): %s\n",
			te.Trial, te.Chunk, te.RNGState, te.PanicValue)
	}
	if interrupted {
		msg := "interrupted; partial results above"
		if copts.CheckpointPath != "" {
			msg += ", progress saved to " + copts.CheckpointPath
		}
		return errors.New(msg)
	}
	return nil
}
