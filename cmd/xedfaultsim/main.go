// Command xedfaultsim regenerates the XED paper's reliability figures with
// the FaultSim-style Monte-Carlo simulator:
//
//	xedfaultsim -experiment fig1   # NonECC vs ECC-DIMM vs Chipkill (On-Die ECC present)
//	xedfaultsim -experiment fig7   # ECC-DIMM vs XED vs Chipkill
//	xedfaultsim -experiment fig8   # same, with scaling faults at 1e-4
//	xedfaultsim -experiment fig9   # Single- vs Double-Chipkill vs XED+Chipkill
//	xedfaultsim -experiment fig10  # same, with scaling faults
//	xedfaultsim -experiment all
//
// Each run prints the probability-of-system-failure curve per year (the
// figures' series) and the headline reliability ratios the paper quotes.
// The paper simulates 1e9 systems; -systems trades precision for time.
package main

import (
	"flag"
	"fmt"
	"os"

	"xedsim/internal/faultsim"
	"xedsim/internal/profiling"
)

func main() {
	experiment := flag.String("experiment", "all", "fig1|fig7|fig8|fig9|fig10|all")
	systems := flag.Int("systems", 2_000_000, "Monte-Carlo trials (systems simulated)")
	seed := flag.Uint64("seed", 42, "random seed")
	scrub := flag.Float64("scrub-hours", 0, "override patrol-scrub interval (hours)")
	overlap := flag.Bool("address-overlap", false, "require address-range intersection for compound failures (precise FaultSim criterion)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
	run := func(name string) {
		if err := runExperiment(name, *systems, *seed, *scrub, *overlap, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
			os.Exit(1)
		}
	}
	switch *experiment {
	case "all":
		for _, name := range []string{"fig1", "fig7", "fig8", "fig9", "fig10"} {
			run(name)
			fmt.Println()
		}
	case "fig1", "fig7", "fig8", "fig9", "fig10":
		run(*experiment)
	default:
		fmt.Fprintf(os.Stderr, "xedfaultsim: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "xedfaultsim: %v\n", err)
		os.Exit(1)
	}
}

func runExperiment(name string, systems int, seed uint64, scrub float64, overlap bool, workers int) error {
	cfg := faultsim.DefaultConfig()
	if scrub > 0 {
		cfg.ScrubIntervalHours = scrub
	}
	cfg.RequireAddressOverlap = overlap

	var schemes []faultsim.Scheme
	var title string
	var ratios [][2]string
	switch name {
	case "fig1":
		title = "Figure 1: reliability solutions in presence of On-Die ECC"
		schemes = []faultsim.Scheme{faultsim.NewNonECC(), faultsim.NewSECDED(), faultsim.NewChipkill()}
		ratios = [][2]string{{"Chipkill", "ECC-DIMM (SECDED)"}}
	case "fig7":
		title = "Figure 7: ECC-DIMM vs XED vs Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
			{"XED", "Chipkill"},
		}
	case "fig8":
		title = "Figure 8: runtime faults in the presence of scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewSECDED(), faultsim.NewXED(), faultsim.NewChipkill()}
		ratios = [][2]string{
			{"XED", "ECC-DIMM (SECDED)"},
			{"Chipkill", "ECC-DIMM (SECDED)"},
		}
	case "fig9":
		title = "Figure 9: Single-Chipkill vs Double-Chipkill vs XED+Chipkill"
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	case "fig10":
		title = "Figure 10: Chipkill family with scaling faults (1e-4)"
		cfg.ScalingRate = 1e-4
		schemes = []faultsim.Scheme{faultsim.NewChipkill(), faultsim.NewDoubleChipkill(), faultsim.NewXEDChipkill()}
		ratios = [][2]string{
			{"Double-Chipkill", "Chipkill"},
			{"XED+Chipkill", "Double-Chipkill"},
		}
	}

	rep, err := faultsim.Run(cfg, schemes, systems, seed, workers)
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Printf("  (%d systems, %d chips each, %.0f-year lifetime, scrub %.0fh)\n",
		systems, cfg.TotalChips(), cfg.LifetimeHours/faultsim.HoursPerYear, cfg.ScrubIntervalHours)
	fmt.Printf("%-22s", "scheme \\ year")
	for y := 1; y <= rep.Years; y++ {
		fmt.Printf(" %9d", y)
	}
	fmt.Println()
	for i := range rep.Results {
		r := &rep.Results[i]
		fmt.Printf("%-22s", r.SchemeName)
		for y := 0; y < rep.Years; y++ {
			fmt.Printf(" %9.3g", r.ProbabilityByYear(y))
		}
		fmt.Printf("   (±%.1g; DUE %.2g, SDC %.2g)\n", r.StdErr(), r.DUEProbability(), r.SDCProbability())
	}
	for _, pair := range ratios {
		ratio, lo, hi := rep.ImprovementCI(pair[0], pair[1])
		fmt.Printf("  %s is %.1fx more reliable than %s (95%% CI %.1f-%.1fx)\n",
			pair[0], ratio, pair[1], lo, hi)
	}
	return nil
}
