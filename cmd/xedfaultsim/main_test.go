package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention: out-of-range values are rejected up front instead of
// violating Config invariants later (-scrub-hours -1) or silently
// disabling periodic snapshots (-checkpoint-every 0).
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{systems: 1000, ckptEvery: time.Second, experiment: "fig1"}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"negative scrub-hours", func(a *cliArgs) { a.scrub = -1 }, "-scrub-hours"},
		{"zero checkpoint-every", func(a *cliArgs) { a.ckptEvery = 0 }, "-checkpoint-every"},
		{"negative checkpoint-every", func(a *cliArgs) { a.ckptEvery = -time.Second }, "-checkpoint-every"},
		{"zero systems", func(a *cliArgs) { a.systems = 0 }, "-systems"},
		{"negative workers", func(a *cliArgs) { a.workers = -1 }, "-workers"},
		{"unknown experiment", func(a *cliArgs) { a.experiment = "fig99" }, "unknown experiment"},
		{"custom without schemes", func(a *cliArgs) { a.experiment = "custom" }, "-schemes"},
		{"schemes outside custom", func(a *cliArgs) { a.schemeList = "XED" }, "-schemes"},
		{"checkpoint with all", func(a *cliArgs) { a.experiment = "all"; a.ckptPath = "x.json" }, "-checkpoint"},
		{"resume without checkpoint", func(a *cliArgs) { a.resume = true }, "-resume"},
		{"unknown engine", func(a *cliArgs) { a.engine = "warp" }, "engine"},
		{"unknown generator", func(a *cliArgs) { a.gen = "warp" }, "generat"},
		{"unknown on-die code", func(a *cliArgs) { a.ondieCode = "crc16" }, "on-die code"},
		{"bad random code seed", func(a *cliArgs) { a.ondieCode = "random:x" }, "seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	// A zero scrub override is "keep the config default", not an error.
	ok := valid
	ok.scrub = 0
	if err := validateArgs(ok); err != nil {
		t.Fatalf("-scrub-hours 0 rejected: %v", err)
	}

	// Every code family is a valid -ondie-code override.
	for _, spec := range []string{"crc8", "hamming", "hsiao", "random:7"} {
		a := valid
		a.ondieCode = spec
		if err := validateArgs(a); err != nil {
			t.Errorf("-ondie-code %s rejected: %v", spec, err)
		}
	}
}
