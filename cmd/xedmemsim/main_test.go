package main

import (
	"strings"
	"testing"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{experiment: "fig11", instr: 100_000}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"zero instr", func(a *cliArgs) { a.instr = 0 }, "-instr"},
		{"negative instr", func(a *cliArgs) { a.instr = -1 }, "-instr"},
		{"negative workers", func(a *cliArgs) { a.workers = -1 }, "-workers"},
		{"unknown experiment", func(a *cliArgs) { a.experiment = "fig99" }, "unknown experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	for _, exp := range []string{"all", "fig11", "fig12", "fig13", "fig14"} {
		a := valid
		a.experiment = exp
		if err := validateArgs(a); err != nil {
			t.Errorf("experiment %q rejected: %v", exp, err)
		}
	}
}
