// Command xedmemsim regenerates the XED paper's performance and power
// figures with the USIMM-style cycle-level simulator:
//
//	xedmemsim -experiment fig11  # normalised execution time per workload
//	xedmemsim -experiment fig12  # normalised memory power per workload
//	xedmemsim -experiment fig13  # extra-burst / extra-transaction alternatives
//	xedmemsim -experiment fig14  # LOT-ECC vs XED per suite
//	xedmemsim -experiment all
//
// -instr sets instructions per core (the paper uses 1B Pinpoints slices;
// the default keeps runs interactive while preserving the relative
// orderings, which is what the figures report).
//
// SIGINT/SIGTERM cancels the in-flight comparison: workers drain at the
// next cycle-batch boundary and the process exits nonzero without printing
// a partially filled matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"

	"xedsim/internal/memsim"
	"xedsim/internal/profiling"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedmemsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	experiment string
	instr      int64
	workers    int
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	if a.instr <= 0 {
		return fmt.Errorf("-instr must be positive, got %d", a.instr)
	}
	if a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", a.workers)
	}
	switch a.experiment {
	case "all", "fig11", "fig12", "fig13", "fig14":
	default:
		return fmt.Errorf("unknown experiment %q", a.experiment)
	}
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "fig11|fig12|fig13|fig14|all")
	instr := flag.Int64("instr", 150_000, "instructions per core")
	seed := flag.Uint64("seed", 7, "random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()
	if err := validateArgs(cliArgs{experiment: *experiment, instr: *instr, workers: *workers}); err != nil {
		usageErr("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "xedmemsim: %v\n", err)
		os.Exit(1)
	}
	var err error
	switch *experiment {
	case "all":
		if err = fig1112(ctx, *instr, *seed, *workers); err == nil {
			fmt.Println()
			err = fig13(ctx, *instr, *seed, *workers)
		}
		if err == nil {
			fmt.Println()
			err = fig14(ctx, *instr, *seed, *workers)
		}
	case "fig11", "fig12":
		err = fig1112(ctx, *instr, *seed, *workers)
	case "fig13":
		err = fig13(ctx, *instr, *seed, *workers)
	case "fig14":
		err = fig14(ctx, *instr, *seed, *workers)
	}
	if perr := prof.Stop(); perr != nil {
		fmt.Fprintf(os.Stderr, "xedmemsim: %v\n", perr)
		os.Exit(1)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "xedmemsim: interrupted; partial results discarded")
		} else {
			fmt.Fprintf(os.Stderr, "xedmemsim: %v\n", err)
		}
		os.Exit(1)
	}
}

func fig1112(ctx context.Context, instr int64, seed uint64, workers int) error {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(),
		memsim.XEDScheme(),
		memsim.ChipkillScheme(),
		memsim.XEDChipkillScheme(),
		memsim.DoubleChipkillScheme(),
	}
	cmp, err := memsim.RunComparison(ctx, memsim.PaperWorkloads(), schemes, instr, seed, workers)
	if err != nil {
		return err
	}

	fmt.Println("Figure 11: normalised execution time (vs ECC-DIMM SECDED)")
	printMatrix(cmp, cmp.NormalizedTime)
	fmt.Printf("paper gmeans: XED 1.00, Chipkill 1.21, XED+Chipkill 1.21, Double-Chipkill 1.82\n\n")

	fmt.Println("Figure 12: normalised memory power (vs ECC-DIMM SECDED)")
	printMatrix(cmp, cmp.NormalizedPower)
	fmt.Println("paper gmeans: XED 1.00, Chipkill 0.92, Double-Chipkill 1.084")
	fmt.Println("(our model charges the overfetched line's transfer energy; see EXPERIMENTS.md)")
	return nil
}

func printMatrix(cmp *memsim.Comparison, metric func(w, s int) float64) {
	fmt.Printf("%-12s", "workload")
	for s := 1; s < len(cmp.Schemes); s++ {
		fmt.Printf(" %10.10s", cmp.Schemes[s].Name)
	}
	fmt.Println()
	for w := range cmp.Workloads {
		fmt.Printf("%-12s", cmp.Workloads[w].Name)
		for s := 1; s < len(cmp.Schemes); s++ {
			fmt.Printf(" %10.3f", metric(w, s))
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "Gmean")
	for s := 1; s < len(cmp.Schemes); s++ {
		sum, n := 0.0, 0
		for w := range cmp.Workloads {
			sum += logOf(metric(w, s))
			n++
		}
		fmt.Printf(" %10.3f", expOf(sum/float64(n)))
	}
	fmt.Println()
}

func fig13(ctx context.Context, instr int64, seed uint64, workers int) error {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(),
		memsim.XEDScheme(),
		memsim.ExtraBurstChipkill(),
		memsim.ExtraTransactionChipkill(),
		memsim.XEDChipkillScheme(),
		memsim.ExtraBurstDoubleChipkill(),
		memsim.ExtraTransactionDoubleChipkill(),
	}
	cmp, err := memsim.RunComparison(ctx, memsim.PaperWorkloads(), schemes, instr, seed, workers)
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: exposing On-Die ECC via extra burst / extra transaction")
	fmt.Printf("%-42s %14s %14s\n", "scheme", "exec time", "memory power")
	for s := 1; s < len(schemes); s++ {
		fmt.Printf("%-42s %14.3f %14.3f\n", schemes[s].Name, cmp.GmeanTime(s), cmp.GmeanPower(s))
	}
	fmt.Println("paper: both alternatives cost measurably more time and power than the")
	fmt.Println("catch-word (XED) implementations at each protection level")
	return nil
}

func fig14(ctx context.Context, instr int64, seed uint64, workers int) error {
	schemes := []memsim.SchemeConfig{
		memsim.SECDEDScheme(),
		memsim.XEDScheme(),
		memsim.LOTECCScheme(),
		memsim.MultiECCScheme(),
	}
	cmp, err := memsim.RunComparison(ctx, memsim.PaperWorkloads(), schemes, instr, seed, workers)
	if err != nil {
		return err
	}
	fmt.Println("Figure 14: LOT-ECC (write-coalescing) vs XED, per suite")
	fmt.Println("(plus the Multi-ECC checksum-RMW scheme of §XII-A for context)")
	fmt.Printf("%-12s %12s %12s %12s\n", "suite", "XED", "LOT-ECC", "Multi-ECC")
	for _, suite := range memsim.SuiteNames() {
		fmt.Printf("%-12s %12.3f %12.3f %12.3f\n", suite,
			cmp.SuiteGmeanTime(1, suite), cmp.SuiteGmeanTime(2, suite), cmp.SuiteGmeanTime(3, suite))
	}
	fmt.Printf("%-12s %12.3f %12.3f %12.3f\n", "GMEAN", cmp.GmeanTime(1), cmp.GmeanTime(2), cmp.GmeanTime(3))
	fmt.Printf("paper: LOT-ECC is 6.6%% slower than XED overall\n")
	return nil
}

func logOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}

func expOf(v float64) float64 { return math.Exp(v) }
