// Command xedfleet ages a simulated datacenter DIMM fleet under the
// paper's Table I field fault rates and reports what a fleet monitor would
// actually see: per-memory-controller EDAC counters, failure curves,
// retirement-policy capacity burn and replacement economics.
//
//	xedfleet -dimms 100000                         # 100k DIMMs, 7 years, XED
//	xedfleet -policy on-first-ce                   # retire rows at the first CE
//	xedfleet -policy harp                          # retire only profiled at-risk rows
//	xedfleet -edac fleet.edac                      # write the EDAC sysfs dump
//	xedfleet -dimm 12345                           # one DIMM's regenerated history
//	xedfleet -checkpoint fleet.ckpt -resume        # continue an interrupted run
//	xedfleet -debug-addr localhost:6060            # live /metrics and /edac views
//
// Results are bit-identical for a fixed (config, -seed, -chunk) at any
// -workers count, and a -resume'd run reproduces an uninterrupted one
// exactly; internal/fleet's statistical battery holds both properties.
// SIGINT/SIGTERM drains workers at chunk boundaries, snapshots progress
// when -checkpoint is set, prints the partial summary and exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xedsim/internal/faultsim"
	"xedsim/internal/fleet"
	"xedsim/internal/obs"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedfleet: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	dimms     int
	years     float64
	scrub     float64
	workers   int
	chunk     int
	dimmsMC   int
	policy    string
	scheme    string
	dimmsHist int
	ckptPath  string
	ckptEvery time.Duration
	resume    bool
}

// validateArgs returns the message usageErr should print, or nil. Range
// errors are caught at flag-validation time rather than surfacing later as
// Config invariant violations.
func validateArgs(a cliArgs) error {
	if a.dimms <= 0 {
		return fmt.Errorf("-dimms must be positive, got %d", a.dimms)
	}
	if a.years <= 0 {
		return fmt.Errorf("-years must be positive, got %v", a.years)
	}
	if a.scrub <= 0 {
		return fmt.Errorf("-scrub-hours must be positive, got %v", a.scrub)
	}
	if a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", a.workers)
	}
	if a.chunk < 0 {
		return fmt.Errorf("-chunk must be >= 0, got %d", a.chunk)
	}
	if a.dimmsMC <= 0 {
		return fmt.Errorf("-dimms-per-mc must be positive, got %d", a.dimmsMC)
	}
	if a.ckptEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %v", a.ckptEvery)
	}
	if _, err := fleet.ParsePolicy(a.policy); err != nil {
		return err
	}
	if a.scheme != "" {
		if _, err := faultsim.SchemesByName(a.scheme); err != nil {
			return err
		}
	}
	if a.dimmsHist >= a.dimms {
		return fmt.Errorf("-dimm %d out of range [0, %d)", a.dimmsHist, a.dimms)
	}
	if a.resume && a.ckptPath == "" {
		return errors.New("-resume needs -checkpoint")
	}
	return nil
}

func main() {
	dimms := flag.Int("dimms", 10_000, "fleet size in DIMMs")
	years := flag.Float64("years", 7, "simulated horizon in years")
	scrub := flag.Float64("scrub-hours", 24*7, "patrol-scrub interval (hours)")
	policy := flag.String("policy", "none", "row retirement policy: none|on-first-ce|threshold:<n>|harp")
	scheme := flag.String("scheme", "XED", "rank-level protection scheme (faultsim registry name)")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS); results do not depend on this")
	chunk := flag.Int("chunk", 0, "DIMMs per scheduling chunk (0 = default); part of the deterministic stream layout")
	dimmsMC := flag.Int("dimms-per-mc", 8, "DIMMs per simulated memory controller (EDAC grouping; sizes checkpoints and dumps)")
	dimmHist := flag.Int("dimm", -1, "print this DIMM's regenerated fault history as JSON and exit")
	edacPath := flag.String("edac", "", "write the EDAC sysfs-shaped counter dump to this file (\"-\" for stdout)")
	ckptPath := flag.String("checkpoint", "", "snapshot fleet progress to this file")
	ckptEvery := flag.Duration("checkpoint-every", fleet.DefaultCheckpointInterval, "interval between periodic snapshots")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	progress := flag.Bool("progress", false, "repaint a one-line live status on stderr")
	metricsJSON := flag.String("metrics-json", "", "write the final metrics snapshot to this file as JSON")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics, /edac and pprof over HTTP on this address")
	flag.Parse()

	if err := validateArgs(cliArgs{
		dimms:     *dimms,
		years:     *years,
		scrub:     *scrub,
		workers:   *workers,
		chunk:     *chunk,
		dimmsMC:   *dimmsMC,
		policy:    *policy,
		scheme:    *scheme,
		dimmsHist: *dimmHist,
		ckptPath:  *ckptPath,
		ckptEvery: *ckptEvery,
		resume:    *resume,
	}); err != nil {
		usageErr("%v", err)
	}

	cfg := fleet.DefaultConfig()
	cfg.DIMMs = *dimms
	cfg.HorizonHours = *years * faultsim.HoursPerYear
	cfg.ScrubIntervalHours = *scrub
	cfg.Scheme = *scheme
	cfg.DIMMsPerMC = *dimmsMC
	cfg.Policy, _ = fleet.ParsePolicy(*policy)
	if err := cfg.Validate(); err != nil {
		usageErr("%v", err)
	}

	opts := fleet.Options{
		Seed:               *seed,
		Workers:            *workers,
		ChunkSize:          *chunk,
		CheckpointPath:     *ckptPath,
		CheckpointInterval: *ckptEvery,
		Resume:             *resume,
	}

	if *dimmHist >= 0 {
		h, err := fleet.History(cfg, opts, *dimmHist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedfleet: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(h); err != nil {
			fmt.Fprintf(os.Stderr, "xedfleet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var reg *obs.Registry
	if *progress || *metricsJSON != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}
	view := fleet.NewView()
	opts.View = view
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedfleet: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xedfleet: serving metrics, /edac and pprof on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: obs.NewMuxViews(reg, map[string]http.Handler{"/edac": view.Handler()})}
		go srv.Serve(ln) //nolint:errcheck // closed on exit
		defer srv.Close()
	}
	if *progress {
		start := time.Now()
		opts.OnChunk = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rxedfleet: %d/%d chunks (%.0f%%), %.0fs elapsed   ",
				done, total, 100*float64(done)/float64(total), time.Since(start).Seconds())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, runErr := fleet.Run(ctx, cfg, opts)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	interrupted := errors.Is(runErr, context.Canceled)
	if runErr != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "xedfleet: %v\n", runErr)
		os.Exit(1)
	}
	printSummary(sum)
	if *edacPath != "" {
		if err := writeEDAC(*edacPath, &cfg, sum); err != nil {
			fmt.Fprintf(os.Stderr, "xedfleet: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsJSON != "" {
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedfleet: %v\n", err)
			os.Exit(1)
		}
	}
	if interrupted {
		msg := "interrupted; partial summary above"
		if *ckptPath != "" {
			msg += ", progress saved to " + *ckptPath
		}
		fmt.Fprintf(os.Stderr, "xedfleet: %s\n", msg)
		os.Exit(1)
	}
}

func printSummary(s *fleet.Summary) {
	t := &s.Tally
	fmt.Printf("fleet: %d DIMMs (%s), %d years, scrub %.0fh, policy %s, seed %d\n",
		t.DIMMs, s.Config.Scheme, s.Years, s.Config.ScrubIntervalHours, s.Config.Policy, s.Seed)
	if !s.Complete {
		fmt.Printf("  PARTIAL: %d of %d DIMMs aged\n", t.DIMMs, s.Config.DIMMs)
	}
	fmt.Printf("  machine-years simulated   %.0f\n", s.MachineYears())
	fmt.Printf("  fault arrivals            %d\n", t.Faults)
	fmt.Printf("  failed DIMMs              %d (%.3g, %.2f nines)\n", t.Failed, s.FailedFraction(), s.Nines())
	fmt.Printf("  detected (DUE) / silent   %d / %d\n", t.DUEs, t.SDCs)
	fmt.Printf("  ce_count / ce_noinfo      %d / %d\n", t.CEs, t.CENoInfo)
	fmt.Printf("  ue_count / ue_noinfo      %d / %d\n", t.UEs, t.UENoInfo)
	fmt.Printf("  rows retired              %d\n", t.RetiredRows)
	fmt.Printf("  replacement cost          $%.0f\n", s.SwapCostUSD())
	fmt.Printf("  %-24s", "cumulative failures")
	for _, n := range s.CumulativeFailedByYear() {
		fmt.Printf(" %7d", n)
	}
	fmt.Println()
	fmt.Printf("  %-24s", "arrival histogram")
	for _, n := range t.Arrivals {
		fmt.Printf(" %7d", n)
	}
	fmt.Println()
}

func writeEDAC(path string, cfg *fleet.Config, sum *fleet.Summary) error {
	dump := fleet.NewEDACSnapshot(cfg, sum.MCs).Dump()
	if path == "-" {
		_, err := os.Stdout.Write(dump)
		return err
	}
	return os.WriteFile(path, dump, 0o644)
}
