package main

import (
	"strings"
	"testing"
	"time"
)

func validBase() cliArgs {
	return cliArgs{
		dimms:     10_000,
		years:     7,
		scrub:     168,
		policy:    "none",
		scheme:    "XED",
		dimmsMC:   8,
		dimmsHist: -1,
		ckptEvery: 30 * time.Second,
	}
}

// TestValidateArgs pins the exit-2 surface: every malformed flag
// combination must be caught at validation time, before any simulation.
func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliArgs)
		wantErr string
	}{
		{"valid", func(a *cliArgs) {}, ""},
		{"valid harp", func(a *cliArgs) { a.policy = "harp" }, ""},
		{"valid threshold", func(a *cliArgs) { a.policy = "threshold:3" }, ""},
		{"valid history", func(a *cliArgs) { a.dimmsHist = 9_999 }, ""},
		{"valid resume", func(a *cliArgs) { a.resume = true; a.ckptPath = "x.ckpt" }, ""},
		{"zero dimms", func(a *cliArgs) { a.dimms = 0 }, "-dimms"},
		{"negative dimms", func(a *cliArgs) { a.dimms = -100 }, "-dimms"},
		{"zero years", func(a *cliArgs) { a.years = 0 }, "-years"},
		{"negative years", func(a *cliArgs) { a.years = -1 }, "-years"},
		{"zero scrub", func(a *cliArgs) { a.scrub = 0 }, "-scrub-hours"},
		{"negative workers", func(a *cliArgs) { a.workers = -1 }, "-workers"},
		{"negative chunk", func(a *cliArgs) { a.chunk = -5 }, "-chunk"},
		{"zero dimms-per-mc", func(a *cliArgs) { a.dimmsMC = 0 }, "-dimms-per-mc"},
		{"zero ckpt interval", func(a *cliArgs) { a.ckptEvery = 0 }, "-checkpoint-every"},
		{"bad policy", func(a *cliArgs) { a.policy = "retire-everything" }, "policy"},
		{"bad threshold", func(a *cliArgs) { a.policy = "threshold:0" }, "threshold"},
		{"bad scheme", func(a *cliArgs) { a.scheme = "NoSuchScheme" }, "NoSuchScheme"},
		{"history out of range", func(a *cliArgs) { a.dimmsHist = 10_000 }, "-dimm"},
		{"resume without checkpoint", func(a *cliArgs) { a.resume = true }, "-resume"},
	}
	for _, tc := range cases {
		a := validBase()
		tc.mutate(&a)
		err := validateArgs(a)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validateArgs accepted %+v", tc.name, a)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
