// Command xedsweep runs parameter sweeps around the paper's operating
// point and emits CSV for plotting — the "what happens as DRAM keeps
// scaling" question the paper's conclusion raises (sub-20nm nodes, rising
// fault rates).
//
//	xedsweep -sweep fit     # multiply every Table I rate x0.5..x16
//	xedsweep -sweep scrub   # patrol-scrub interval 1h..1 month
//	xedsweep -sweep scaling # scaling-fault rate 1e-6..1e-3 (Table III++)
//	xedsweep -sweep silent  # on-die miss rate 0..5% (code-strength sweep)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xedsim/internal/analysis"
	"xedsim/internal/faultsim"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedsweep: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	sweep   string
	systems int
	workers int
	engine  string
	gen     string
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	if a.systems <= 0 {
		return fmt.Errorf("-systems must be positive, got %d", a.systems)
	}
	if a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", a.workers)
	}
	switch a.sweep {
	case "fit", "scrub", "scaling", "silent", "aging":
	default:
		return fmt.Errorf("unknown sweep %q", a.sweep)
	}
	if _, err := faultsim.ParseEngine(a.engine); err != nil {
		return err
	}
	if _, err := faultsim.ParseGenerator(a.gen); err != nil {
		return err
	}
	return nil
}

func main() {
	sweep := flag.String("sweep", "fit", "fit|scrub|scaling|silent|aging")
	systems := flag.Int("systems", 500_000, "Monte-Carlo trials per point")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "campaign evaluation engine: lanes|indexed|reference (default indexed); results are bit-identical")
	gen := flag.String("gen", "", "trial-generation mode: scalar|batch (default scalar)")
	flag.Parse()
	if err := validateArgs(cliArgs{sweep: *sweep, systems: *systems, workers: *workers, engine: *engine, gen: *gen}); err != nil {
		usageErr("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	schemes := []faultsim.Scheme{
		faultsim.NewSECDED(), faultsim.NewXED(),
		faultsim.NewChipkill(), faultsim.NewXEDChipkill(),
	}
	header := "point,secded,xed,chipkill,xedchipkill,xed_due,xed_sdc"
	row := func(label string, cfg faultsim.Config) {
		rep, err := faultsim.RunCampaign(ctx, cfg, schemes, faultsim.CampaignOptions{
			Trials: *systems, Seed: *seed, Workers: *workers,
			Engine: faultsim.Engine(*engine),
			Gen:    faultsim.Generator(*gen),
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// Completed rows are already printed; drop the partial one.
				fmt.Fprintln(os.Stderr, "xedsweep: interrupted")
			} else {
				fmt.Fprintf(os.Stderr, "xedsweep: %v\n", err)
			}
			os.Exit(1)
		}
		xed := rep.ResultFor("XED")
		fmt.Printf("%s,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n", label,
			rep.ResultFor("ECC-DIMM (SECDED)").Probability(),
			xed.Probability(),
			rep.ResultFor("Chipkill").Probability(),
			rep.ResultFor("XED+Chipkill").Probability(),
			xed.DUEProbability(), xed.SDCProbability())
	}

	fmt.Println(header)
	switch *sweep {
	case "fit":
		// The scaling-era question: every fault class worsens together.
		for _, mult := range []float64{0.5, 1, 2, 4, 8, 16} {
			cfg := faultsim.DefaultConfig()
			scaled := make(faultsim.FITTable, len(cfg.FITs))
			for i, c := range cfg.FITs {
				c.Rate = faultsim.FIT(float64(c.Rate) * mult)
				scaled[i] = c
			}
			cfg.FITs = scaled
			row(fmt.Sprintf("fit_x%g", mult), cfg)
		}
	case "scrub":
		for _, hours := range []float64{1, 24, 24 * 7, 24 * 30} {
			cfg := faultsim.DefaultConfig()
			cfg.ScrubIntervalHours = hours
			row(fmt.Sprintf("scrub_%gh", hours), cfg)
		}
	case "scaling":
		for _, rate := range []float64{0, 1e-6, 1e-5, 1e-4, 1e-3} {
			cfg := faultsim.DefaultConfig()
			cfg.ScalingRate = rate
			row(fmt.Sprintf("scaling_%g", rate), cfg)
			if rate > 0 {
				m := analysis.TableIIIRow(rate, 72)
				fmt.Fprintf(os.Stderr, "  scaling %g: serial mode 1 per %.3g accesses\n",
					rate, m.SerialModeInterval())
			}
		}
	case "silent":
		// How much does on-die detection strength matter? 0 = perfect
		// detection, 0.05 = a weak code missing 5% of multi-bit damage.
		for _, frac := range []float64{0, 0.002, 0.008, 0.011, 0.02, 0.05} {
			cfg := faultsim.DefaultConfig()
			cfg.SilentWordFraction = frac
			row(fmt.Sprintf("silent_%g", frac), cfg)
		}
	case "aging":
		profiles := []struct {
			name string
			p    faultsim.AgingProfile
		}{
			{"flat", faultsim.FlatAging()},
			{"bathtub", faultsim.BathtubAging()},
			{"infant10x", faultsim.AgingProfile{InfantFactor: 10, BurnInFraction: 0.05, WearoutFactor: 1}},
			{"wearout5x", faultsim.AgingProfile{InfantFactor: 1, WearoutFactor: 5, WearoutOnset: 0.6}},
		}
		for _, pr := range profiles {
			cfg := faultsim.DefaultConfig()
			cfg.Aging = pr.p
			row("aging_"+pr.name, cfg)
		}
	}
}
