package main

import (
	"strings"
	"testing"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{sweep: "fit", systems: 1000}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"zero systems", func(a *cliArgs) { a.systems = 0 }, "-systems"},
		{"negative systems", func(a *cliArgs) { a.systems = -5 }, "-systems"},
		{"negative workers", func(a *cliArgs) { a.workers = -1 }, "-workers"},
		{"unknown sweep", func(a *cliArgs) { a.sweep = "voltage" }, "unknown sweep"},
		{"empty sweep", func(a *cliArgs) { a.sweep = "" }, "unknown sweep"},
		{"unknown engine", func(a *cliArgs) { a.engine = "warp" }, "engine"},
		{"unknown generator", func(a *cliArgs) { a.gen = "warp" }, "generat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	for _, sweep := range []string{"fit", "scrub", "scaling", "silent", "aging"} {
		a := valid
		a.sweep = sweep
		if err := validateArgs(a); err != nil {
			t.Errorf("sweep %q rejected: %v", sweep, err)
		}
	}
}
