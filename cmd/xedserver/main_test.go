package main

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"xedsim/internal/dist"
)

// serveArgs returns a valid serve-mode baseline.
func serveArgs() cliArgs {
	return cliArgs{
		addr:         ":7600",
		queueDepth:   dist.DefaultQueueDepth,
		leaseTimeout: dist.DefaultLeaseTTL,
		unitChunks:   dist.DefaultUnitChunks,
		persistEvery: dist.DefaultPersistInterval,
		systems:      1,
	}
}

// submitArgs returns a valid submit-mode baseline.
func submitArgs() cliArgs {
	a := serveArgs()
	a.submit = true
	a.coordinator = "http://localhost:7600"
	a.schemeList = "XED"
	a.systems = 1000
	return a
}

// TestValidateArgs pins the exit-2 flag-validation contract for both
// modes.
func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliArgs)
		wantErr string // substring; empty = valid
	}{
		{"serve defaults", func(a *cliArgs) {}, ""},
		{"submit baseline", func(a *cliArgs) { *a = submitArgs() }, ""},
		{"empty addr", func(a *cliArgs) { a.addr = "" }, "-addr"},
		{"zero queue depth", func(a *cliArgs) { a.queueDepth = 0 }, "-queue-depth"},
		{"negative lease timeout", func(a *cliArgs) { a.leaseTimeout = -time.Second }, "-lease-timeout"},
		{"zero unit chunks", func(a *cliArgs) { a.unitChunks = 0 }, "-unit-chunks"},
		{"zero persist interval", func(a *cliArgs) { a.persistEvery = 0 }, "-persist-every"},
		{"coordinator without submit", func(a *cliArgs) { a.coordinator = "http://x" }, "-coordinator only applies"},
		{"out without submit", func(a *cliArgs) { a.outPath = "x.ckpt" }, "-out only applies"},
		{"submit without coordinator", func(a *cliArgs) { *a = submitArgs(); a.coordinator = "" }, "-coordinator"},
		{"submit without schemes", func(a *cliArgs) { *a = submitArgs(); a.schemeList = "" }, "-schemes"},
		{"submit zero systems", func(a *cliArgs) { *a = submitArgs(); a.systems = 0 }, "-systems"},
		{"submit negative chunk size", func(a *cliArgs) { *a = submitArgs(); a.chunkSize = -1 }, "-chunk-size"},
		{"submit negative scrub", func(a *cliArgs) { *a = submitArgs(); a.scrub = -1 }, "-scrub-hours"},
		{"submit bad engine", func(a *cliArgs) { *a = submitArgs(); a.engine = "warp" }, "engine"},
		{"submit bad generator", func(a *cliArgs) { *a = submitArgs(); a.gen = "warp" }, "generat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := serveArgs()
			tc.mutate(&a)
			err := validateArgs(a)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid args rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestSplitTrim(t *testing.T) {
	got := splitTrim(" XED , Chipkill ,,")
	if want := []string{"XED", "Chipkill"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("splitTrim = %v, want %v", got, want)
	}
}
