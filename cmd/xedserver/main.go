// Command xedserver runs the campaign coordinator — the service side of
// "campaign as a service" — and doubles as its submission client:
//
//	xedserver -addr :7600 -state-dir /var/lib/xedsim     # serve
//	xedserver -submit -coordinator http://host:7600 \
//	    -schemes "ECC-DIMM (SECDED),XED" -systems 2000000 -out run.ckpt
//
// Serving: campaign jobs arrive over HTTP (POST /v1/jobs), are sharded
// into leased chunk spans, and xedworker processes drain them. Results are
// bit-identical to a local xedfaultsim run of the same campaign — the
// /v1/jobs/{id}/checkpoint endpoint serves exactly the bytes a local run's
// -checkpoint file would contain. With -state-dir the job ledger and
// accumulators survive restarts: a killed coordinator resumes its
// in-flight jobs. SIGINT/SIGTERM drains gracefully (readiness flips,
// workers are refused and back off, state is persisted).
//
// Submitting: -submit builds a campaign spec from the same flags
// xedfaultsim uses, rides out coordinator restarts and backpressure, and
// prints the per-scheme failure probabilities; -out saves the canonical
// result checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xedsim/internal/dist"
	"xedsim/internal/faultsim"
	"xedsim/internal/obs"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedserver: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	// serve mode
	addr         string
	stateDir     string
	queueDepth   int
	leaseTimeout time.Duration
	unitChunks   int
	persistEvery time.Duration
	// submit mode
	submit      bool
	coordinator string
	schemeList  string
	systems     int
	chunkSize   int
	scrub       float64
	engine      string
	gen         string
	outPath     string
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	if a.submit {
		if a.coordinator == "" {
			return errors.New("-submit needs -coordinator URL")
		}
		if a.schemeList == "" {
			return fmt.Errorf("-submit needs -schemes (valid: %v)", faultsim.SchemeNames())
		}
		if a.systems <= 0 {
			return fmt.Errorf("-systems must be positive, got %d", a.systems)
		}
		if a.chunkSize < 0 {
			return fmt.Errorf("-chunk-size must be >= 0, got %d", a.chunkSize)
		}
		if a.scrub < 0 {
			return fmt.Errorf("-scrub-hours must be >= 0, got %v", a.scrub)
		}
		if _, err := faultsim.ParseEngine(a.engine); err != nil {
			return err
		}
		if _, err := faultsim.ParseGenerator(a.gen); err != nil {
			return err
		}
		return nil
	}
	if a.coordinator != "" {
		return errors.New("-coordinator only applies to -submit")
	}
	if a.outPath != "" {
		return errors.New("-out only applies to -submit")
	}
	if a.addr == "" {
		return errors.New("-addr must not be empty")
	}
	if a.queueDepth <= 0 {
		return fmt.Errorf("-queue-depth must be positive, got %d", a.queueDepth)
	}
	if a.leaseTimeout <= 0 {
		return fmt.Errorf("-lease-timeout must be positive, got %v", a.leaseTimeout)
	}
	if a.unitChunks <= 0 {
		return fmt.Errorf("-unit-chunks must be positive, got %d", a.unitChunks)
	}
	if a.persistEvery <= 0 {
		return fmt.Errorf("-persist-every must be positive, got %v", a.persistEvery)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":7600", "serve the coordinator API on this address")
	stateDir := flag.String("state-dir", "", "persist the job ledger and accumulators here (restarts resume in-flight jobs)")
	queueDepth := flag.Int("queue-depth", dist.DefaultQueueDepth, "max jobs admitted but not finished; beyond it submissions get 429")
	leaseTimeout := flag.Duration("lease-timeout", dist.DefaultLeaseTTL, "work-unit lease TTL; a silent worker's units are re-dispatched after this")
	unitChunks := flag.Int("unit-chunks", dist.DefaultUnitChunks, "campaign chunks per leased work unit")
	persistEvery := flag.Duration("persist-every", dist.DefaultPersistInterval, "interval between background state persists")
	submit := flag.Bool("submit", false, "act as a submission client instead of serving")
	coordinator := flag.String("coordinator", "", "coordinator base URL (submit mode)")
	schemeList := flag.String("schemes", "", "comma-separated scheme names (submit mode)")
	systems := flag.Int("systems", 2_000_000, "Monte-Carlo trials (submit mode)")
	seed := flag.Uint64("seed", 42, "random seed (submit mode)")
	chunkSize := flag.Int("chunk-size", 0, "trials per chunk, 0 = engine default (submit mode)")
	scrub := flag.Float64("scrub-hours", 0, "override patrol-scrub interval in hours (submit mode)")
	overlap := flag.Bool("address-overlap", false, "require address-range intersection for compound failures (submit mode)")
	engine := flag.String("engine", "", "worker evaluation engine: lanes|indexed|reference; results are bit-identical (submit mode)")
	gen := flag.String("gen", "", "trial-generation mode: scalar|batch; part of the job identity (submit mode)")
	outPath := flag.String("out", "", "write the result's canonical checkpoint to this file (submit mode)")
	flag.Parse()

	if err := validateArgs(cliArgs{
		addr:         *addr,
		stateDir:     *stateDir,
		queueDepth:   *queueDepth,
		leaseTimeout: *leaseTimeout,
		unitChunks:   *unitChunks,
		persistEvery: *persistEvery,
		submit:       *submit,
		coordinator:  *coordinator,
		schemeList:   *schemeList,
		systems:      *systems,
		chunkSize:    *chunkSize,
		scrub:        *scrub,
		engine:       *engine,
		gen:          *gen,
		outPath:      *outPath,
	}); err != nil {
		usageErr("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	if *submit {
		err = runSubmit(ctx, submitOptions{
			coordinator: *coordinator,
			schemes:     splitTrim(*schemeList),
			systems:     *systems,
			seed:        *seed,
			chunkSize:   *chunkSize,
			scrub:       *scrub,
			overlap:     *overlap,
			engine:      *engine,
			gen:         *gen,
			outPath:     *outPath,
		})
	} else {
		err = runServe(ctx, dist.CoordinatorOptions{
			StateDir:        *stateDir,
			QueueDepth:      *queueDepth,
			LeaseTTL:        *leaseTimeout,
			UnitChunks:      *unitChunks,
			PersistInterval: *persistEvery,
		}, *addr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xedserver: %v\n", err)
		os.Exit(1)
	}
}

// runServe hosts the coordinator until the context is cancelled, then
// drains: readiness flips to 503, in-flight requests finish, and all job
// state is persisted so the next incarnation resumes where this one
// stopped.
func runServe(ctx context.Context, copts dist.CoordinatorOptions, addr string) error {
	copts.Metrics = obs.NewRegistry()
	coord, err := dist.NewCoordinator(copts)
	if err != nil {
		return err
	}
	coord.Start(ctx)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xedserver: serving on http://%s", ln.Addr())
	if copts.StateDir != "" {
		fmt.Fprintf(os.Stderr, " (state in %s)", copts.StateDir)
	}
	fmt.Fprintln(os.Stderr)

	srv := &http.Server{Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "xedserver: draining")
	coord.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	coord.SaveState()
	fmt.Fprintln(os.Stderr, "xedserver: state saved, bye")
	return nil
}

type submitOptions struct {
	coordinator string
	schemes     []string
	systems     int
	seed        uint64
	chunkSize   int
	scrub       float64
	overlap     bool
	engine      string
	gen         string
	outPath     string
}

// runSubmit submits one campaign, waits it out, prints the per-scheme
// summary, and optionally saves the canonical checkpoint.
func runSubmit(ctx context.Context, o submitOptions) error {
	cfg := faultsim.DefaultConfig()
	if o.scrub > 0 {
		cfg.ScrubIntervalHours = o.scrub
	}
	cfg.RequireAddressOverlap = o.overlap
	spec := &dist.JobSpec{
		Config:    cfg,
		Schemes:   o.schemes,
		Trials:    o.systems,
		Seed:      o.seed,
		ChunkSize: o.chunkSize,
		Engine:    o.engine,
		Gen:       o.gen,
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	cl := dist.NewClient(o.coordinator, nil)
	cl.PollInterval = time.Second
	st, err := cl.Wait(ctx, spec)
	if err != nil {
		return err
	}
	if st.State == dist.JobFailed {
		return fmt.Errorf("job %.12s failed: %s", st.ID, st.Error)
	}
	rep, err := cl.Result(ctx, st.ID)
	if err != nil {
		return err
	}

	fmt.Printf("job %.12s done: %d of %d systems", st.ID, rep.Trials, rep.Requested)
	if st.Cached {
		fmt.Print(" (served from result cache)")
	}
	fmt.Println()
	fmt.Printf("%-22s", "scheme \\ year")
	for y := 1; y <= rep.Years; y++ {
		fmt.Printf(" %9d", y)
	}
	fmt.Println()
	for i := range rep.Results {
		r := &rep.Results[i]
		fmt.Printf("%-22s", r.SchemeName)
		for y := 0; y < rep.Years; y++ {
			fmt.Printf(" %9.3g", r.ProbabilityByYear(y))
		}
		fmt.Printf("   (±%.1g; DUE %.2g, SDC %.2g)\n", r.StdErr(), r.DUEProbability(), r.SDCProbability())
	}

	if o.outPath != "" {
		b, err := cl.CheckpointBytes(ctx, st.ID)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.outPath, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "xedserver: result checkpoint written to %s\n", o.outPath)
	}
	return nil
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
