package main

import (
	"strings"
	"testing"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{experiment: "table2", samples: 1000}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"zero samples", func(a *cliArgs) { a.samples = 0 }, "-samples"},
		{"negative samples", func(a *cliArgs) { a.samples = -1 }, "-samples"},
		{"unknown experiment", func(a *cliArgs) { a.experiment = "table9" }, "unknown experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	for _, exp := range []string{"all", "table2", "fig6", "table3", "table4"} {
		a := valid
		a.experiment = exp
		if err := validateArgs(a); err != nil {
			t.Errorf("experiment %q rejected: %v", exp, err)
		}
	}
}
