// Command xedcodes regenerates the XED paper's code-strength tables and
// analytic figures:
//
//	xedcodes -experiment table2  # detection of random & burst errors (Hamming vs CRC8-ATM)
//	xedcodes -experiment fig6    # catch-word collision probability over time
//	xedcodes -experiment table3  # likelihood of multiple catch-words per access
//	xedcodes -experiment table4  # SDC and DUE rates of XED
//	xedcodes -experiment all
package main

import (
	"flag"
	"fmt"
	"os"

	"xedsim/internal/analysis"
	"xedsim/internal/ecc"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedcodes: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	experiment string
	samples    int
}

// validateArgs returns the message usageErr should print, or nil. A
// non-positive -samples would make the Table II Monte-Carlo cells divide
// by zero, so it is rejected up front.
func validateArgs(a cliArgs) error {
	if a.samples <= 0 {
		return fmt.Errorf("-samples must be positive, got %d", a.samples)
	}
	switch a.experiment {
	case "all", "table2", "fig6", "table3", "table4":
	default:
		return fmt.Errorf("unknown experiment %q", a.experiment)
	}
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "table2|fig6|table3|table4|all")
	samples := flag.Int("samples", 2_000_000, "Monte-Carlo samples per Table II cell (k >= 5)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	if err := validateArgs(cliArgs{experiment: *experiment, samples: *samples}); err != nil {
		usageErr("%v", err)
	}

	switch *experiment {
	case "all":
		table2(*samples, *seed)
		fmt.Println()
		fig6()
		fmt.Println()
		table3()
		fmt.Println()
		table4()
	case "table2":
		table2(*samples, *seed)
	case "fig6":
		fig6()
	case "table3":
		table3()
	case "table4":
		table4()
	}
}

func table2(samples int, seed uint64) {
	fmt.Println("Table II: detection-rate of random and burst errors")
	fmt.Println("(the paper compares Hamming and CRC8-ATM; the Hsiao column — the code")
	fmt.Println(" commercial DIMMs actually ship — is this repo's addition)")
	hamming := ecc.MeasureDetection(ecc.NewHamming(), samples, seed)
	crc := ecc.MeasureDetection(ecc.NewCRC8ATM(), samples, seed)
	hsiao := ecc.MeasureDetection(ecc.NewHsiao(), samples, seed)
	fmt.Printf("%-8s %-24s %-24s %-24s\n", "", "(72,64) Hamming", "(72,64) CRC8-ATM", "(72,64) Hsiao")
	fmt.Printf("%-8s %-11s %-12s %-11s %-12s %-11s %-12s\n", "errors", "random", "burst", "random", "burst", "random", "burst")
	for k := 1; k <= 8; k++ {
		fmt.Printf("%-8d %-11s %-12s %-11s %-12s %-11s %-12s\n", k,
			pct(hamming.Random[k-1]), pct(hamming.Burst[k-1]),
			pct(crc.Random[k-1]), pct(crc.Burst[k-1]),
			pct(hsiao.Random[k-1]), pct(hsiao.Burst[k-1]))
	}
	fmt.Printf("undetected multi-bit fraction: Hamming %.2g, CRC8-ATM %.2g, Hsiao %.2g (paper uses 0.8%%)\n",
		ecc.UndetectedMultiBitFraction(hamming), ecc.UndetectedMultiBitFraction(crc),
		ecc.UndetectedMultiBitFraction(hsiao))
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

func fig6() {
	fmt.Println("Figure 6: probability of a catch-word collision over time")
	years := []float64{1, 2, 3, 4, 5, 6, 7, 100, 1e4, 1e6}
	configs := []struct {
		name  string
		model analysis.CollisionModel
	}{
		{"x8, 64-bit CW, write/4ns", analysis.X8Default()},
		{"x8, paper-calibrated", analysis.PaperCalibratedX8()},
		{"x4, 32-bit CW, write/4ns", analysis.X4Default()},
	}
	fmt.Printf("%-26s %14s", "configuration", "MTTC")
	for _, y := range years {
		fmt.Printf(" %8.0gy", y)
	}
	fmt.Println()
	for _, c := range configs {
		mttc := c.model.MeanTimeBetweenCollisionsYears()
		fmt.Printf("%-26s %11.3g yr", c.name, mttc)
		for _, p := range c.model.Curve(years) {
			fmt.Printf(" %9.2g", p)
		}
		fmt.Println()
	}
	fmt.Println("paper quotes: 3.2M years mean for x8 (calibrated row); ~6.6h for x4 devices")
}

func table3() {
	fmt.Println("Table III: likelihood of multiple catch-words per access")
	fmt.Printf("%-18s %-22s %-22s %-20s\n",
		"scaling-fault rate", "per 72-bit word", "per 8-bit beat chunk", "serial-mode interval")
	for _, rate := range []float64{1e-4, 1e-5, 1e-6} {
		word := analysis.TableIIIRow(rate, 72)
		beat := analysis.TableIIIRow(rate, 8)
		fmt.Printf("%-18.0e %-22.3g %-22.3g 1 per %.3g accesses\n",
			rate, word.Probability(), beat.Probability(), beat.SerialModeInterval())
	}
	fmt.Println("paper's Table III (2e-5, 2e-7, 2e-9) matches the per-beat convention;")
	fmt.Println("\"once every 200K accesses\" (§VII-B) likewise")
}

func table4() {
	fmt.Println("Table IV: SDC and DUE rates of XED over 7 years")
	v := analysis.DefaultXEDVulnerability()
	fmt.Printf("%-44s %s\n", "source of vulnerability", "rate over 7 years")
	fmt.Printf("%-44s %s\n", "XED: scaling-related faults", "no SDC or DUE (always corrected)")
	fmt.Printf("%-44s %.2g (SDC)   [paper: 1.4e-13]\n", "XED: row/column/bank failure (mis-diagnosis)", v.SDCProbability())
	fmt.Printf("%-44s %.2g (DUE)   [paper: 6.1e-06]\n", "XED: word failure (silent transient)", v.DUEProbability())
	fmt.Printf("%-44s %.2g        [paper: 7.7e-04]\n", "  ... transient word-fault probability", v.TransientWordProbability())
	fmt.Printf("%-44s %.2g        [paper: ~1e-12]\n", "  ... inter-line mis-identification prob.", v.MisidentificationProbability())
	mc := analysis.MultiChipLossProbability(25.8, 4.1, 9, 8, v.LifetimeHours, 168)
	fmt.Printf("%-44s %.2g        [paper: 5.8e-04]\n", "data loss from multi-chip failures (analytic)", mc)
}
