// Command xedverify runs the conformance claim table: the XED paper's
// qualitative results encoded as machine-checkable assertions
// (internal/conformance). It prints one verdict line per claim and exits
// nonzero unless every claim is CONFIRMED:
//
//	xedverify                      # full table, CI defaults
//	xedverify -list                # print claim names and exit
//	xedverify -claims fig7/xed-over-secded-10x,table1/fit-inputs
//	xedverify -seed 7 -max-trials 4000000 -configs 200
//
// Statistical claims are decided by a sequential probability-ratio test
// over Monte-Carlo campaign batches — each claim consumes only as many
// trials as its margin needs — with -max-trials bounding the worst case.
// Exit status: 0 all claims confirmed, 1 any claim refuted, inconclusive
// or errored, 2 flag errors.
//
// With -coordinator the gate's campaigns run through an xedserver
// coordinator instead of local cores:
//
//	xedverify -coordinator http://host:7600
//
// Because the service's results are bit-identical to local runs, the same
// table at the same seeds must reach the same verdicts — this is how a
// deployed campaign service is certified.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xedsim/internal/conformance"
	"xedsim/internal/dist"
	"xedsim/internal/faultsim"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedverify: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	claims          string
	seed            uint64
	workers         int
	batch           int
	maxTrials       int
	configs         int
	trialsPerConfig int
	engine          string
	gen             string
	coordinator     string
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	if a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", a.workers)
	}
	if a.batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", a.batch)
	}
	if a.maxTrials < a.batch {
		return fmt.Errorf("-max-trials (%d) must be at least -batch (%d)", a.maxTrials, a.batch)
	}
	if a.configs <= 0 {
		return fmt.Errorf("-configs must be positive, got %d", a.configs)
	}
	if a.trialsPerConfig <= 0 {
		return fmt.Errorf("-trials-per-config must be positive, got %d", a.trialsPerConfig)
	}
	if _, err := faultsim.ParseEngine(a.engine); err != nil {
		return err
	}
	if _, err := faultsim.ParseGenerator(a.gen); err != nil {
		return err
	}
	if a.coordinator != "" && a.workers != 0 {
		return fmt.Errorf("-workers does not apply with -coordinator (the service's workers decide parallelism)")
	}
	if a.claims != "" {
		if _, err := selectedClaims(a.claims); err != nil {
			return err
		}
	}
	return nil
}

// selectedClaims resolves the -claims list against the table.
func selectedClaims(list string) ([]conformance.Claim, error) {
	var names []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return conformance.SelectClaims(conformance.PaperClaims(), names)
}

func main() {
	def := conformance.DefaultOptions()
	claimList := flag.String("claims", "", "comma-separated claim names (default: all; see -list)")
	list := flag.Bool("list", false, "print the claim table and exit")
	seed := flag.Uint64("seed", def.Seed, "root seed for campaigns and differential sweeps")
	workers := flag.Int("workers", 0, "campaign workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", def.Batch, "Monte-Carlo trials per sequential-test step")
	maxTrials := flag.Int("max-trials", def.MaxTrials, "trial budget per statistical claim")
	configs := flag.Int("configs", def.Configs, "random configs for the evaluator differential claim")
	trialsPerConfig := flag.Int("trials-per-config", def.TrialsPerConfig, "trials per differential config")
	engine := flag.String("engine", "", "campaign evaluation engine: lanes|indexed|reference (default indexed); verdicts must not depend on it")
	gen := flag.String("gen", "", "trial-generation mode: scalar|batch (default scalar); verdicts must agree across modes")
	coordinator := flag.String("coordinator", "", "run campaigns through this xedserver coordinator URL instead of local cores")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}

	if err := validateArgs(cliArgs{
		claims:          *claimList,
		seed:            *seed,
		workers:         *workers,
		batch:           *batch,
		maxTrials:       *maxTrials,
		configs:         *configs,
		trialsPerConfig: *trialsPerConfig,
		engine:          *engine,
		gen:             *gen,
		coordinator:     *coordinator,
	}); err != nil {
		usageErr("%v", err)
	}

	claims, err := selectedClaims(*claimList)
	if err != nil {
		usageErr("%v", err) // unreachable after validateArgs; defensive
	}

	if *list {
		for _, c := range claims {
			fmt.Printf("%-34s %-18s %s\n", c.Name, c.Ref, c.Doc)
		}
		return
	}

	opts := conformance.Options{
		Seed:            *seed,
		Workers:         *workers,
		Batch:           *batch,
		MaxTrials:       *maxTrials,
		Configs:         *configs,
		TrialsPerConfig: *trialsPerConfig,
		Engine:          faultsim.Engine(*engine),
		Gen:             faultsim.Generator(*gen),
	}
	if *coordinator != "" {
		opts.Runner = dist.NewClient(*coordinator, nil).Runner()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	verdicts := conformance.Run(ctx, claims, opts, func(v conformance.Verdict) {
		fmt.Println(formatVerdict(v))
	})

	confirmed := 0
	for _, v := range verdicts {
		if v.Status == conformance.Confirmed {
			confirmed++
		}
	}
	fmt.Printf("\n%d/%d claims confirmed in %v\n", confirmed, len(verdicts), time.Since(start).Round(time.Millisecond))
	if !conformance.AllConfirmed(verdicts) {
		os.Exit(1)
	}
}

// formatVerdict renders one claim's outcome as a single line:
//
//	CONFIRMED  fig7/xed-over-secded-10x   (§VII Fig. 7, 0.50s, 500000 trials, conf 1-1e-09)  P(XED)=...
func formatVerdict(v conformance.Verdict) string {
	conf := ""
	switch {
	case v.Confidence >= 1:
		conf = ", exhaustive"
	case v.Confidence > 0:
		conf = fmt.Sprintf(", err<=%.2g", 1-v.Confidence)
	}
	line := fmt.Sprintf("%-12s %-34s (%s, %.2fs, %d trials%s)",
		v.Status, v.Claim, v.Ref, v.Elapsed.Seconds(), v.Trials, conf)
	if v.Detail != "" {
		line += "  " + v.Detail
	}
	if v.Err != nil {
		line += "  error: " + v.Err.Error()
	}
	return line
}
