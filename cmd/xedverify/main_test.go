package main

import (
	"strings"
	"testing"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention, including claim-name resolution: a typo in -claims must be
// a usage error, not an empty (vacuously green) run.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{batch: 1000, maxTrials: 10000, configs: 10, trialsPerConfig: 5}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"negative workers", func(a *cliArgs) { a.workers = -1 }, "-workers"},
		{"zero batch", func(a *cliArgs) { a.batch = 0 }, "-batch"},
		{"max-trials below batch", func(a *cliArgs) { a.maxTrials = 999 }, "-max-trials"},
		{"zero configs", func(a *cliArgs) { a.configs = 0 }, "-configs"},
		{"zero trials-per-config", func(a *cliArgs) { a.trialsPerConfig = 0 }, "-trials-per-config"},
		{"unknown claim", func(a *cliArgs) { a.claims = "fig7/no-such-claim" }, "unknown claim"},
		{"unknown engine", func(a *cliArgs) { a.engine = "warp" }, "engine"},
		{"unknown generator", func(a *cliArgs) { a.gen = "warp" }, "generat"},
		{"workers with coordinator", func(a *cliArgs) {
			a.coordinator = "http://localhost:7600"
			a.workers = 4
		}, "-workers does not apply"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	// Known claim names — with surrounding whitespace and a trailing comma
	// — resolve.
	ok := valid
	ok.claims = " table1/fit-inputs , fig7/xed-over-secded-10x,"
	if err := validateArgs(ok); err != nil {
		t.Fatalf("known claims rejected: %v", err)
	}

	// -coordinator alone is valid (service-backed campaigns).
	svc := valid
	svc.coordinator = "http://localhost:7600"
	if err := validateArgs(svc); err != nil {
		t.Fatalf("-coordinator rejected: %v", err)
	}
}

// TestSelectedClaimsOrder: -claims picks claims in the order given, not
// table order.
func TestSelectedClaimsOrder(t *testing.T) {
	claims, err := selectedClaims("fig7/xed-over-secded-10x,table1/fit-inputs")
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 2 || claims[0].Name != "fig7/xed-over-secded-10x" || claims[1].Name != "table1/fit-inputs" {
		t.Fatalf("unexpected selection: %+v", claims)
	}
}
