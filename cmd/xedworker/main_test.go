package main

import (
	"strings"
	"testing"
	"time"

	"xedsim/internal/dist"
)

func validWorkerArgs() cliArgs {
	return cliArgs{
		coordinator: "http://localhost:7600",
		heartbeat:   dist.DefaultHeartbeatInterval,
	}
}

// TestValidateArgs pins the exit-2 flag-validation contract.
func TestValidateArgs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliArgs)
		wantErr string // substring; empty = valid
	}{
		{"baseline", func(a *cliArgs) {}, ""},
		{"explicit everything", func(a *cliArgs) {
			a.id = "w1"
			a.parallel = 4
			a.maxUnits = 10
			a.debugAddr = "localhost:0"
		}, ""},
		{"missing coordinator", func(a *cliArgs) { a.coordinator = "" }, "-coordinator"},
		{"negative parallel", func(a *cliArgs) { a.parallel = -1 }, "-parallel"},
		{"zero heartbeat", func(a *cliArgs) { a.heartbeat = 0 }, "-heartbeat"},
		{"negative heartbeat", func(a *cliArgs) { a.heartbeat = -time.Second }, "-heartbeat"},
		{"negative max units", func(a *cliArgs) { a.maxUnits = -1 }, "-max-units"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := validWorkerArgs()
			tc.mutate(&a)
			err := validateArgs(a)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid args rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestDefaultWorkerID(t *testing.T) {
	id := defaultWorkerID()
	if id == "" || !strings.Contains(id, "-") {
		t.Fatalf("defaultWorkerID = %q", id)
	}
}
