// Command xedworker is the compute side of "campaign as a service": it
// leases work units (contiguous chunk spans of a campaign) from an
// xedserver coordinator, evaluates them with the chunked Monte-Carlo
// engine, and reports the tallies back.
//
//	xedworker -coordinator http://host:7600 -parallel 8
//
// Workers are stateless and crash-safe by construction: every chunk is a
// pure function of the campaign spec, so killing a worker at any instant —
// including mid-unit — loses nothing but time. Its leases expire and the
// coordinator re-dispatches the units. Heartbeats keep long units alive;
// retries with jittered exponential backoff ride out coordinator restarts
// and backpressure. -max-units stops the worker after N settled units (the
// chaos harness's kill lever; also handy for scale-to-zero batch runs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"xedsim/internal/dist"
	"xedsim/internal/obs"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedworker: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	coordinator string
	id          string
	parallel    int
	heartbeat   time.Duration
	maxUnits    int
	debugAddr   string
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	if a.coordinator == "" {
		return errors.New("-coordinator URL is required")
	}
	if a.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", a.parallel)
	}
	if a.heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive, got %v", a.heartbeat)
	}
	if a.maxUnits < 0 {
		return fmt.Errorf("-max-units must be >= 0, got %d", a.maxUnits)
	}
	return nil
}

func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return host + "-" + strconv.Itoa(os.Getpid())
}

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://host:7600")
	id := flag.String("id", "", "worker identity in lease traffic (default hostname-pid)")
	parallel := flag.Int("parallel", 0, "concurrent work units (0 = GOMAXPROCS)")
	heartbeat := flag.Duration("heartbeat", dist.DefaultHeartbeatInterval, "lease-extension interval; keep well below the coordinator's -lease-timeout")
	maxUnits := flag.Int("max-units", 0, "exit after settling this many units (0 = run until signalled)")
	debugAddr := flag.String("debug-addr", "", "serve live metrics and pprof over HTTP on this address")
	flag.Parse()

	args := cliArgs{
		coordinator: *coordinator,
		id:          *id,
		parallel:    *parallel,
		heartbeat:   *heartbeat,
		maxUnits:    *maxUnits,
		debugAddr:   *debugAddr,
	}
	if err := validateArgs(args); err != nil {
		usageErr("%v", err)
	}
	if args.id == "" {
		args.id = defaultWorkerID()
	}
	if args.parallel == 0 {
		args.parallel = runtime.GOMAXPROCS(0)
	}

	reg := obs.NewRegistry()
	if args.debugAddr != "" {
		ln, err := net.Listen("tcp", args.debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedworker: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xedworker: serving metrics and pprof on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: obs.NewMux(reg)}
		go srv.Serve(ln) //nolint:errcheck
		defer srv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := dist.NewWorker(dist.WorkerOptions{
		ID:                args.id,
		Coordinator:       args.coordinator,
		Parallel:          args.parallel,
		HeartbeatInterval: args.heartbeat,
		MaxUnits:          args.maxUnits,
		Metrics:           reg,
	})
	fmt.Fprintf(os.Stderr, "xedworker: %s leasing from %s with %d slots\n", args.id, args.coordinator, args.parallel)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xedworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xedworker: settled %d units, bye\n", w.UnitsDone())
}
