// Command xedinfer reverse-engineers a black-box chip's on-die ECC, the
// BEER/HARP related-work scenario (internal/infer): the on-die code is
// unknown and must be inferred from bus-visible behaviour alone.
//
//	xedinfer                              # BEER + HARP against a random code
//	xedinfer -experiment beer -code crc8  # recover a known code's H-matrix
//	xedinfer -experiment beer -code random:7 -dump-h
//	xedinfer -experiment harp -words 64 -weak 6 -rounds 16
//
// The beer experiment builds a chip around the selected code, runs the
// check-bit probe sweep and reports whether the recovered parity-check
// matrix matches the truth bit for bit (canonical form for codes whose
// check columns are not the identity). The harp experiment plants
// correctable and uncorrectable permanent faults in a chip, profiles it,
// and reports how the post-correction predictions compare to the plants.
//
// Exit status: 0 success, 1 inference failed or predictions missed,
// 2 flag errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"xedsim/internal/dram"
	"xedsim/internal/ecc"
	"xedsim/internal/faultsim"
	"xedsim/internal/infer"
	"xedsim/internal/simrand"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedinfer: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	experiment string
	code       string
	words      int
	weak       int
	broken     int
	rounds     int
}

// validateArgs returns the message usageErr should print, or nil.
func validateArgs(a cliArgs) error {
	switch a.experiment {
	case "all", "beer", "harp":
	default:
		return fmt.Errorf("unknown experiment %q (want beer, harp or all)", a.experiment)
	}
	if _, err := faultsim.ParseOnDieCode(a.code); err != nil {
		return err
	}
	if a.words <= 0 {
		return fmt.Errorf("-words must be positive, got %d", a.words)
	}
	if a.weak < 0 || a.broken < 0 {
		return fmt.Errorf("-weak and -broken must be >= 0, got %d and %d", a.weak, a.broken)
	}
	if a.weak+a.broken > a.words {
		return fmt.Errorf("-weak (%d) plus -broken (%d) exceeds -words (%d)", a.weak, a.broken, a.words)
	}
	if a.rounds <= 0 {
		return fmt.Errorf("-rounds must be positive, got %d", a.rounds)
	}
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "beer|harp|all")
	codeSpec := flag.String("code", "random:1", "on-die code under test: crc8|hamming|hsiao|random:<seed>")
	words := flag.Int("words", 32, "words profiled by the harp experiment")
	weak := flag.Int("weak", 4, "profiled words planted with a correctable single-bit fault")
	broken := flag.Int("broken", 2, "profiled words planted with an uncorrectable double-bit fault")
	rounds := flag.Int("rounds", 8, "random test patterns per probe sweep / profiled word")
	seed := flag.Uint64("seed", 1, "random seed")
	dumpH := flag.Bool("dump-h", false, "print the true and recovered parity-check matrices")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	a := cliArgs{
		experiment: *experiment,
		code:       *codeSpec,
		words:      *words,
		weak:       *weak,
		broken:     *broken,
		rounds:     *rounds,
	}
	if err := validateArgs(a); err != nil {
		usageErr("%v", err)
	}
	code, _ := faultsim.ParseOnDieCode(a.code) // validated above

	ok := true
	switch a.experiment {
	case "all":
		ok = runBEER(code, a, *seed, *dumpH)
		fmt.Println()
		ok = runHARP(code, a, *seed) && ok
	case "beer":
		ok = runBEER(code, a, *seed, *dumpH)
	case "harp":
		ok = runHARP(code, a, *seed)
	}
	if !ok {
		os.Exit(1)
	}
}

func inferGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, RowsPerBank: 64, ColsPerRow: 16}
}

// runBEER recovers the code's parity-check matrix from a black-box chip
// and compares it to the truth.
func runBEER(code ecc.Code64, a cliArgs, seed uint64, dumpH bool) bool {
	fmt.Printf("BEER-style recovery: on-die code %s\n", code.Name())
	chip := dram.NewChip(inferGeom(), code)
	got, ev, err := infer.RecoverHMatrix(chip, infer.BEEROptions{Rounds: a.rounds, Seed: seed})
	if err != nil {
		fmt.Printf("  recovery failed: %v\n", err)
		return false
	}
	fmt.Printf("  %d probes over %d data-pattern families pinned all 64 data columns\n",
		ev.ProbeCount, ev.Families)

	m, ok := code.(interface{ Matrix() ecc.HMatrix72 })
	if !ok {
		fmt.Println("  true matrix unavailable (code exposes no Matrix()); cannot compare")
		return false
	}
	want, err := m.Matrix().Canonical()
	if err != nil {
		fmt.Printf("  true matrix has no canonical form: %v\n", err)
		return false
	}
	if dumpH {
		fmt.Printf("  true (canonical): %v\n", want)
		fmt.Printf("  recovered:        %v\n", got)
	}
	if got != want {
		fmt.Println("  MISMATCH: recovered matrix differs from the true canonical form")
		return false
	}
	fmt.Println("  recovered H equals the true canonical H bit for bit")
	return true
}

// runHARP plants faults, profiles the chip and scores the predictions.
func runHARP(code ecc.Code64, a cliArgs, seed uint64) bool {
	fmt.Printf("HARP-style profiling: on-die code %s, %d words (%d weak, %d broken)\n",
		code.Name(), a.words, a.weak, a.broken)
	chip := dram.NewChip(inferGeom(), code)
	geom := chip.Geometry()
	rng := simrand.New(seed)

	addrs := make([]dram.WordAddr, 0, a.words)
	used := map[dram.WordAddr]bool{}
	for len(addrs) < a.words {
		w := dram.WordAddr{Bank: rng.Intn(geom.Banks), Row: rng.Intn(geom.RowsPerBank), Col: rng.Intn(geom.ColsPerRow)}
		if !used[w] {
			used[w] = true
			addrs = append(addrs, w)
		}
	}
	wantRisk := map[dram.WordAddr]bool{}
	wantUncorr := map[dram.WordAddr]bool{}
	for i := 0; i < a.weak; i++ {
		chip.InjectFault(dram.NewBitFault(addrs[i], rng.Intn(64), false))
		wantRisk[addrs[i]] = true
	}
	for i := a.weak; i < a.weak+a.broken; i++ {
		bitA := rng.Intn(64)
		bitB := (bitA + 1 + rng.Intn(63)) % 64
		chip.InjectFault(dram.NewWordFault(addrs[i], 1<<uint(bitA)|1<<uint(bitB), 0, false))
		wantRisk[addrs[i]] = true
		wantUncorr[addrs[i]] = true
	}

	p := infer.ProfileChip(chip, addrs, infer.HARPOptions{Rounds: a.rounds, Seed: seed + 1})
	uncorr := p.PredictUncorrectable()
	risk := p.PredictAtRisk()
	fmt.Printf("  profiled %d words x %d reads: %d at-risk, %d uncorrectable\n",
		len(p.Words), p.Words[0].Reads, len(risk), len(uncorr))

	score := func(name string, got []dram.WordAddr, want map[dram.WordAddr]bool) bool {
		missed, extra := len(want), 0
		for _, w := range got {
			if want[w] {
				missed--
			} else {
				extra++
			}
		}
		fmt.Printf("  %s: %d/%d planted flagged, %d false positives\n", name, len(want)-missed, len(want), extra)
		return missed == 0 && extra == 0
	}
	ok := score("uncorrectable", uncorr, wantUncorr)
	ok = score("at-risk", risk, wantRisk) && ok
	if ok {
		fmt.Println("  predictions match the planted faults exactly")
	}
	return ok
}
