package main

import (
	"strings"
	"testing"

	"xedsim/internal/faultsim"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{experiment: "all", code: "random:1", words: 32, weak: 4, broken: 2, rounds: 8}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string
	}{
		{"unknown experiment", func(a *cliArgs) { a.experiment = "beerharp" }, "unknown experiment"},
		{"unknown code", func(a *cliArgs) { a.code = "crc16" }, "on-die code"},
		{"bad random seed", func(a *cliArgs) { a.code = "random:x" }, "seed"},
		{"zero words", func(a *cliArgs) { a.words = 0 }, "-words"},
		{"negative weak", func(a *cliArgs) { a.weak = -1 }, "-weak"},
		{"negative broken", func(a *cliArgs) { a.broken = -1 }, "-broken"},
		{"plants exceed words", func(a *cliArgs) { a.weak = 30; a.broken = 3 }, "exceeds -words"},
		{"zero rounds", func(a *cliArgs) { a.rounds = 0 }, "-rounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := valid
			tc.mut(&a)
			err := validateArgs(a)
			if err == nil {
				t.Fatalf("%+v accepted", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	for _, exp := range []string{"all", "beer", "harp"} {
		a := valid
		a.experiment = exp
		if err := validateArgs(a); err != nil {
			t.Errorf("experiment %q rejected: %v", exp, err)
		}
	}
	for _, code := range []string{"", "crc8", "hamming", "hsiao", "random:42"} {
		a := valid
		a.code = code
		if err := validateArgs(a); err != nil {
			t.Errorf("code %q rejected: %v", code, err)
		}
	}
}

// TestExperimentsSucceed drives both experiments end to end on small
// configurations; each must report success against every code family.
func TestExperimentsSucceed(t *testing.T) {
	for _, spec := range []string{"crc8", "hamming", "hsiao", "random:3"} {
		a := cliArgs{experiment: "all", code: spec, words: 8, weak: 2, broken: 1, rounds: 2}
		if err := validateArgs(a); err != nil {
			t.Fatal(err)
		}
		code, err := faultsim.ParseOnDieCode(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !runBEER(code, a, 5, false) {
			t.Errorf("%s: BEER run failed", spec)
		}
		if !runHARP(code, a, 5) {
			t.Errorf("%s: HARP run failed", spec)
		}
	}
}
