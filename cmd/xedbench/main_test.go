package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: xedsim/internal/faultsim
cpu: Intel(R) Xeon(R)
BenchmarkTableICampaign/judge/engine=indexed-8   2016  1100 ns/op  7490254 trials/s  12 B/op  3 allocs/op
BenchmarkTableICampaign/judge/engine=indexed-8   2358  1000 ns/op  7181168 trials/s  12 B/op  3 allocs/op
BenchmarkTableICampaign/judge/engine=indexed-8   2092  1200 ns/op  7420544 trials/s  12 B/op  3 allocs/op
BenchmarkTableICampaign/judge/engine=lanes-8     12921  200 ns/op  41814207 trials/s  0 B/op  0 allocs/op
PASS
ok  	xedsim/internal/faultsim	52.1s
`

func TestParseBench(t *testing.T) {
	doc, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "xedsim/internal/faultsim" {
		t.Fatalf("preamble not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	idx := doc.Benchmarks[0]
	if idx.Name != "BenchmarkTableICampaign/judge/engine=indexed-8" || idx.Runs != 3 {
		t.Fatalf("indexed aggregation wrong: %+v", idx)
	}
	// Median of {1100, 1000, 1200} is 1100; min/max bound the spread.
	if idx.Median["ns/op"] != 1100 || idx.MinNsOp != 1000 || idx.MaxNsOp != 1200 {
		t.Fatalf("median/min/max wrong: %+v", idx.Median)
	}
	if idx.Median["allocs/op"] != 3 || idx.Median["trials/s"] != 7420544 {
		t.Fatalf("secondary metrics wrong: %+v", idx.Median)
	}
	lanes := doc.Benchmarks[1]
	if lanes.Runs != 1 || lanes.Median["trials/s"] != 41814207 {
		t.Fatalf("lanes aggregation wrong: %+v", lanes)
	}
	if idx.Group != "judge" || lanes.Group != "judge" {
		t.Fatalf("stage groups wrong: %q, %q", idx.Group, lanes.Group)
	}
}

func TestBenchGroup(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkTableICampaign/judge/engine=lanes-8":             "judge",
		"BenchmarkTableICampaign/gen/gen=batch-8":                  "gen",
		"BenchmarkTableICampaign/end2end/engine=lanes/gen=batch-8": "end2end",
		"BenchmarkTableICampaign/gen-8":                            "gen",
		"BenchmarkX-4":                                             "",
		"BenchmarkX":                                               "",
	} {
		if got := benchGroup(name); got != want {
			t.Fatalf("benchGroup(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestParseBenchEvenCountAndEmpty(t *testing.T) {
	two := `BenchmarkX-4  10  100 ns/op
BenchmarkX-4  10  300 ns/op
`
	doc, err := parseBench(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Benchmarks[0].Median["ns/op"]; got != 200 {
		t.Fatalf("even-count median = %v, want 200", got)
	}

	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output accepted; a failed run could write a plausible file")
	}
}
