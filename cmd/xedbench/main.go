// Command xedbench converts `go test -bench` output into a stable JSON
// document so the performance trajectory of the evaluation engines is
// machine-readable across PRs (BENCH_pr6.json et seq.).
//
// It reads benchmark text from stdin, groups repeated runs of the same
// benchmark (-count=N), and emits per-benchmark medians — the median, not
// the mean, because shared CI machines produce heavy-tailed noise that a
// single slow run would otherwise smear across the whole record.
//
// Usage:
//
//	go test -run='^$' -bench Campaign -benchmem -count=6 ./... | xedbench -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xedbench:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xedbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xedbench:", err)
		os.Exit(1)
	}
}

// Doc is the exported JSON shape. Benchmarks preserve first-seen order so
// diffs between PR snapshots stay readable.
type Doc struct {
	// Goos, Goarch and Pkg are copied from the go test preamble when
	// present.
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// Benchmark aggregates all -count runs of one benchmark name.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g.
	// "BenchmarkTableICampaign/judge/engine=lanes-8".
	Name string `json:"name"`
	// Group is the first sub-benchmark path component ("judge", "gen",
	// "end2end", ...), letting consumers split a pipeline benchmark into
	// its stages without re-parsing Name. Empty for flat benchmarks.
	Group string `json:"group,omitempty"`
	// Runs is the number of repetitions aggregated.
	Runs int `json:"runs"`
	// Median maps metric unit → median value across runs. Units are as
	// printed by the testing package: "ns/op", "B/op", "allocs/op", and
	// any ReportMetric extras such as "trials/s".
	Median map[string]float64 `json:"median"`
	// Min and Max bound the observed spread for the primary ns/op metric,
	// recording the noise floor alongside the median.
	MinNsOp float64 `json:"min_ns_op,omitempty"`
	MaxNsOp float64 `json:"max_ns_op,omitempty"`

	samples map[string][]float64
}

// parseBench consumes `go test -bench` text. Unrecognised lines (test
// chatter, PASS/ok trailers) are skipped; having zero benchmark lines is
// an error so an empty or failed bench run cannot write a plausible file.
func parseBench(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var rest string
		switch {
		case scanPrefix(line, "goos: ", &rest):
			doc.Goos = rest
		case scanPrefix(line, "goarch: ", &rest):
			doc.Goarch = rest
		case scanPrefix(line, "pkg: ", &rest):
			doc.Pkg = rest
		case scanPrefix(line, "Benchmark", &rest):
			name, metrics, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b := byName[name]
			if b == nil {
				b = &Benchmark{Name: name, Group: benchGroup(name), samples: map[string][]float64{}}
				byName[name] = b
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
			b.Runs++
			for unit, v := range metrics {
				b.samples[unit] = append(b.samples[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	for _, b := range doc.Benchmarks {
		b.Median = map[string]float64{}
		for unit, vs := range b.samples {
			b.Median[unit] = median(vs)
		}
		if ns := b.samples["ns/op"]; len(ns) > 0 {
			b.MinNsOp, b.MaxNsOp = minMax(ns)
		}
	}
	return doc, nil
}

// benchGroup extracts the first sub-benchmark path component:
// "BenchmarkTableICampaign/gen/gen=batch-8" → "gen". Flat benchmark names
// (no "/") have no group. A trailing "-N" GOMAXPROCS suffix is stripped
// only when the group is the final component.
func benchGroup(name string) string {
	start := -1
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			if start >= 0 {
				return name[start:i]
			}
			start = i + 1
		}
	}
	if start < 0 {
		return ""
	}
	group := name[start:]
	for i := len(group) - 1; i > 0; i-- {
		if group[i] == '-' {
			return group[:i]
		}
	}
	return group
}

// parseBenchLine splits one "BenchmarkX-8  123  456 ns/op  7 B/op ..."
// line into its name and unit→value pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := splitFields(line)
	// Minimum shape: name, iteration count, value, unit.
	if len(fields) < 4 {
		return "", nil, false
	}
	name := fields[0]
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

func scanPrefix(line, prefix string, rest *string) bool {
	if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
		*rest = line[len(prefix):]
		return true
	}
	return false
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	// Insertion sort: run counts are single digits.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
