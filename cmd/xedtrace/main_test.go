package main

import (
	"strings"
	"testing"
)

// TestValidateArgs pins the flag-range validation behind the exit-2 usage
// convention: exactly one mode, range-checked capture parameters.
func TestValidateArgs(t *testing.T) {
	valid := cliArgs{capture: true, out: "trace.json", trials: 1000}
	if err := validateArgs(valid); err != nil {
		t.Fatalf("valid capture args rejected: %v", err)
	}
	for _, a := range []cliArgs{
		{judge: "trace.json"},
		{stats: "trace.json"},
	} {
		if err := validateArgs(a); err != nil {
			t.Fatalf("valid args %+v rejected: %v", a, err)
		}
	}

	cases := []struct {
		name string
		args cliArgs
		want string
	}{
		{"no mode", cliArgs{}, "pick one"},
		{"capture+judge", cliArgs{capture: true, out: "x", trials: 1, judge: "t.json"}, "mutually exclusive"},
		{"judge+stats", cliArgs{judge: "a.json", stats: "b.json"}, "mutually exclusive"},
		{"capture empty out", cliArgs{capture: true, trials: 1}, "-out"},
		{"capture zero trials", cliArgs{capture: true, out: "x", trials: 0}, "-trials"},
		{"capture negative scaling", cliArgs{capture: true, out: "x", trials: 1, scaling: -0.1}, "-scaling"},
		{"capture scaling above 1", cliArgs{capture: true, out: "x", trials: 1, scaling: 1.5}, "-scaling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateArgs(tc.args)
			if err == nil {
				t.Fatalf("%+v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	// Judge/stats modes ignore capture-only parameters, even at their
	// (irrelevant) zero values.
	if err := validateArgs(cliArgs{judge: "t.json", trials: 0, out: ""}); err != nil {
		t.Fatalf("judge mode rejected capture-parameter zero values: %v", err)
	}
}
