// Command xedtrace captures, inspects and re-judges Monte-Carlo fault
// traces — the reproducibility tooling around the reliability simulator.
//
//	xedtrace -capture -trials 100000 -out trace.json      # record a campaign
//	xedtrace -judge trace.json                            # evaluate all schemes on it
//	xedtrace -stats trace.json                            # fault population summary
//
// A captured trace pins the exact fault streams, so scheme changes can be
// compared on identical inputs and regressions bisected run-for-run.
package main

import (
	"flag"
	"fmt"
	"os"

	"xedsim/internal/dram"
	"xedsim/internal/faultsim"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xedtrace: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// cliArgs is the flag-validation surface, separated from flag.Parse so the
// exit-2 usage convention is unit-testable (see main_test.go).
type cliArgs struct {
	capture      bool
	judge, stats string
	out          string
	trials       int
	scaling      float64
}

// validateArgs returns the message usageErr should print, or nil. Exactly
// one mode must be selected, and capture parameters are range-checked here
// rather than surfacing later as Config or CaptureTrace errors.
func validateArgs(a cliArgs) error {
	modes := 0
	if a.capture {
		modes++
	}
	if a.judge != "" {
		modes++
	}
	if a.stats != "" {
		modes++
	}
	if modes == 0 {
		return fmt.Errorf("pick one of -capture, -judge or -stats")
	}
	if modes > 1 {
		return fmt.Errorf("-capture, -judge and -stats are mutually exclusive")
	}
	if a.capture {
		if a.out == "" {
			return fmt.Errorf("-capture needs a non-empty -out")
		}
		if a.trials <= 0 {
			return fmt.Errorf("-trials must be positive, got %d", a.trials)
		}
		if a.scaling < 0 || a.scaling > 1 {
			return fmt.Errorf("-scaling must be in [0,1], got %v", a.scaling)
		}
	}
	return nil
}

func main() {
	capture := flag.Bool("capture", false, "generate and save a trace")
	judge := flag.String("judge", "", "trace file to evaluate under all schemes")
	stats := flag.String("stats", "", "trace file to summarise")
	out := flag.String("out", "trace.json", "output path for -capture")
	trials := flag.Int("trials", 100_000, "systems to capture")
	seed := flag.Uint64("seed", 42, "random seed for -capture")
	scaling := flag.Float64("scaling", 0, "scaling-fault rate (e.g. 1e-4)")
	flag.Parse()
	if err := validateArgs(cliArgs{
		capture: *capture,
		judge:   *judge,
		stats:   *stats,
		out:     *out,
		trials:  *trials,
		scaling: *scaling,
	}); err != nil {
		usageErr("%v", err)
	}

	switch {
	case *capture:
		cfg := faultsim.DefaultConfig()
		cfg.ScalingRate = *scaling
		tr, err := faultsim.CaptureTrace(cfg, *trials, *seed)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fatal(err)
		}
		total := 0
		for _, t := range tr.Trials {
			total += len(t)
		}
		fmt.Printf("captured %d systems (%d fault records) to %s\n", *trials, total, *out)
	case *judge != "":
		tr := load(*judge)
		rep, err := tr.Judge(faultsim.AllSchemes())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %12s %12s %12s\n", "scheme", "P(fail)", "DUE", "SDC")
		for i := range rep.Results {
			r := &rep.Results[i]
			fmt.Printf("%-22s %12.3g %12.3g %12.3g\n",
				r.SchemeName, r.Probability(), r.DUEProbability(), r.SDCProbability())
		}
	case *stats != "":
		tr := load(*stats)
		byGran := map[dram.Granularity]int{}
		byKind := map[string]int{}
		total, silent := 0, 0
		for _, trial := range tr.Trials {
			for i := range trial {
				r := &trial[i]
				byGran[r.Gran]++
				if r.Transient {
					byKind["transient"]++
				} else {
					byKind["permanent"]++
				}
				if r.Silent {
					silent++
				}
				total++
			}
		}
		fmt.Printf("%d systems, %d fault records (%.4f per system)\n",
			len(tr.Trials), total, float64(total)/float64(len(tr.Trials)))
		fmt.Printf("persistence: %d transient, %d permanent; %d silent-on-die\n",
			byKind["transient"], byKind["permanent"], silent)
		for g := dram.GranBit; g <= dram.GranChip; g++ {
			if n := byGran[g]; n > 0 {
				fmt.Printf("  %-12s %8d (%.2f%%)\n", g, n, 100*float64(n)/float64(total))
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *faultsim.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := faultsim.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xedtrace: %v\n", err)
	os.Exit(1)
}
