// Command xedmemtest is a memtest-style exerciser for the functional XED
// fleet: it walks classic test patterns across an address-mapped memory
// system, optionally injects faults mid-run, scrubs, and reports every
// correction the controllers performed. It demonstrates — end to end, with
// real stored bits — that the paper's mechanism survives what it claims to
// survive.
//
//	xedmemtest                       # clean pass
//	xedmemtest -kill-chip 3          # kill chip 3 of every rank mid-test
//	xedmemtest -scaling 1e-4         # with birthtime weak cells
//	xedmemtest -rows 64 -passes 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"xedsim/internal/core"
	"xedsim/internal/dram"
	"xedsim/internal/obs"
)

var patterns = []struct {
	name string
	fill func(addr uint64, beat int) uint64
}{
	{"zeros", func(uint64, int) uint64 { return 0 }},
	{"ones", func(uint64, int) uint64 { return ^uint64(0) }},
	{"addr-in-data", func(a uint64, b int) uint64 { return a ^ uint64(b)<<56 }},
	{"checker-55", func(uint64, int) uint64 { return 0x5555555555555555 }},
	{"checker-AA", func(uint64, int) uint64 { return 0xaaaaaaaaaaaaaaaa }},
	{"walking-1", func(a uint64, b int) uint64 { return 1 << uint((a>>6+uint64(b))%64) }},
}

func main() {
	rows := flag.Int("rows", 32, "rows per bank (test size)")
	banks := flag.Int("banks", 2, "banks per chip")
	killChip := flag.Int("kill-chip", -1, "chip (0-8) to fail in every rank after the first pattern")
	scaling := flag.Float64("scaling", 0, "scaling-fault rate per bit")
	passes := flag.Int("passes", 1, "test passes")
	seed := flag.Uint64("seed", 1, "seed")
	metricsJSON := flag.String("metrics-json", "", "write the fleet's final core.* metrics snapshot to this file as JSON")
	flag.Parse()
	if *rows <= 0 || *banks <= 0 || *passes <= 0 {
		fmt.Fprintf(os.Stderr, "xedmemtest: -rows, -banks and -passes must be positive\n")
		flag.Usage()
		os.Exit(2)
	}
	if *killChip > 8 {
		fmt.Fprintf(os.Stderr, "xedmemtest: -kill-chip must be in 0..8 (or negative for none)\n")
		flag.Usage()
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	fleet, err := core.NewMemorySystem(core.MemorySystemConfig{
		Channels:         4,
		RanksPerChannel:  2,
		Geometry:         dram.Geometry{Banks: *banks, RowsPerBank: *rows, ColsPerRow: 128},
		ScalingFaultRate: *scaling,
		Seed:             *seed,
		Metrics:          reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xedmemtest: %v\n", err)
		os.Exit(2)
	}
	lines := fleet.Capacity() / 64
	fmt.Printf("%s — testing %d lines (%d KB)\n", fleet, lines, fleet.Capacity()>>10)

	failures := 0
	for pass := 0; pass < *passes; pass++ {
		for pi, p := range patterns {
			// Fill.
			for l := uint64(0); l < lines; l++ {
				addr := l << 6
				var line core.Line
				for b := range line {
					line[b] = p.fill(addr, b)
				}
				fleet.Write(addr, line)
			}
			// Mid-test chip kill after the first pattern of pass 0.
			if pass == 0 && pi == 0 && *killChip >= 0 {
				for ch := 0; ch < 4; ch++ {
					for rk := 0; rk < 2; rk++ {
						fleet.InjectChipFailure(ch, rk, *killChip,
							dram.NewChipFault(false, uint64(ch*2+rk)+77))
					}
				}
				fmt.Printf("  !! injected permanent failure of chip %d in all 8 ranks\n", *killChip)
			}
			// Verify.
			bad, dues := 0, 0
			for l := uint64(0); l < lines; l++ {
				addr := l << 6
				res := fleet.Read(addr)
				if res.Outcome == core.OutcomeDUE {
					dues++
					continue
				}
				for b := range res.Data {
					if res.Data[b] != p.fill(addr, b) {
						bad++
						break
					}
				}
			}
			st := fleet.TotalStats()
			fmt.Printf("  pass %d %-12s miscompares=%d DUEs=%d (cum: erasure=%d serial=%d diag=%d collisions=%d)\n",
				pass, p.name, bad, dues,
				st.ErasureCorrections, st.SerialCorrections, st.DiagCorrections, st.Collisions)
			failures += bad + dues
		}
	}
	if reg != nil {
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xedmemtest: %v\n", err)
			os.Exit(1)
		}
	}
	if failures == 0 {
		fmt.Println("PASS: no miscompares, no uncorrectable errors")
		return
	}
	fmt.Printf("FAIL: %d bad lines\n", failures)
	os.Exit(1)
}
